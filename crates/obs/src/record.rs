//! Versioned run records.
//!
//! A [`RunRecord`] is the unit every runner emits: what ran
//! (`kind`/`label`), under which parameters (`params`), and what was
//! measured (`metrics`). The serialized form carries
//! [`SCHEMA_VERSION`]; [`RunRecord::from_json_str`] refuses any other
//! version so downstream tooling (`scripts/check_bench.py`, committed
//! baselines) fails loudly instead of misreading fields after a schema
//! change.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// The current on-disk record schema version. Bump on any change to the
/// serialized field layout, and update `scripts/check_bench.py` and the
/// committed baselines in the same PR.
///
/// v2 added the optional `degraded` flag (budget-limited runs that
/// returned best-so-far results); v1 records parse with `degraded =
/// false`.
pub const SCHEMA_VERSION: u32 = 2;

/// The oldest schema version this reader still parses.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// A reader-side failure: malformed JSON, a missing field, or a record
/// written by a different schema version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// The document is not valid JSON.
    Parse(String),
    /// The document parses but does not match the record shape.
    Malformed(String),
    /// The record declares a schema version this reader does not speak.
    SchemaVersion {
        /// Version found in the record.
        found: u32,
        /// Version this reader expects.
        expected: u32,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Parse(msg) => write!(f, "run record parse error: {msg}"),
            ObsError::Malformed(msg) => write!(f, "malformed run record: {msg}"),
            ObsError::SchemaVersion { found, expected } => write!(
                f,
                "run record schema version {found} is not supported (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for ObsError {}

/// One observed run: identity, parameters, and measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema version the record was written under.
    pub schema_version: u32,
    /// What kind of run this is (e.g. `"discovery"`, `"bench_pipeline"`).
    pub kind: String,
    /// Instance label (e.g. dataset name, `"ips/ItalyPowerDemand"`).
    pub label: String,
    /// Run parameters — seeds, thread counts, config knobs.
    pub params: BTreeMap<String, Json>,
    /// Everything measured.
    pub metrics: MetricsSnapshot,
    /// True when the run hit a discovery budget and returned best-so-far
    /// results (schema v2; absent in v1 records, which parse as `false`).
    pub degraded: bool,
}

impl RunRecord {
    /// A new record under the current [`SCHEMA_VERSION`].
    pub fn new(kind: impl Into<String>, label: impl Into<String>) -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            kind: kind.into(),
            label: label.into(),
            params: BTreeMap::new(),
            metrics: MetricsSnapshot::default(),
            degraded: false,
        }
    }

    /// Builder-style parameter insertion.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<Json>) -> RunRecord {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Attaches a metrics snapshot (replacing any previous one).
    pub fn with_metrics(mut self, metrics: MetricsSnapshot) -> RunRecord {
        self.metrics = metrics;
        self
    }

    /// Stamps whether the run degraded under a discovery budget.
    pub fn with_degraded(mut self, degraded: bool) -> RunRecord {
        self.degraded = degraded;
        self
    }

    /// Serializes as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut params = Json::object();
        for (k, v) in &self.params {
            params.insert(k.clone(), v.clone());
        }
        let mut obj = Json::object();
        obj.insert("schema_version", u64::from(self.schema_version));
        obj.insert("kind", self.kind.clone());
        obj.insert("label", self.label.clone());
        obj.insert("params", params);
        obj.insert("metrics", self.metrics.to_json());
        obj.insert("degraded", self.degraded);
        obj
    }

    /// Serializes as a pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Rebuilds a record from a JSON value, accepting any schema version
    /// in `MIN_SCHEMA_VERSION..=SCHEMA_VERSION` (v1 records parse with
    /// `degraded = false`).
    pub fn from_json(value: &Json) -> Result<RunRecord, ObsError> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or_else(|| ObsError::Malformed("missing `schema_version`".into()))?
            as u32;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(ObsError::SchemaVersion {
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let text_field = |name: &str| -> Result<String, ObsError> {
            value
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ObsError::Malformed(format!("missing `{name}` string")))
        };
        let params = value
            .get("params")
            .and_then(Json::as_obj)
            .ok_or_else(|| ObsError::Malformed("missing `params` object".into()))?
            .clone();
        let metrics = value
            .get("metrics")
            .ok_or_else(|| ObsError::Malformed("missing `metrics` object".into()))
            .and_then(|m| MetricsSnapshot::from_json(m).map_err(ObsError::Malformed))?;
        let degraded = value
            .get("degraded")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok(RunRecord {
            schema_version: version,
            kind: text_field("kind")?,
            label: text_field("label")?,
            params,
            metrics,
            degraded,
        })
    }

    /// Parses and rebuilds a record from a JSON document.
    pub fn from_json_str(text: &str) -> Result<RunRecord, ObsError> {
        let value = Json::parse(text).map_err(|e| ObsError::Parse(e.to_string()))?;
        RunRecord::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> RunRecord {
        let registry = MetricsRegistry::new();
        registry.incr("candidates_in", 1200);
        registry.incr("cache_hits", 37);
        registry.set_gauge("accuracy", 0.9375);
        registry.observe_ns("pruning", 52_000);
        RunRecord::new("discovery", "ips/ItalyPowerDemand")
            .with_param("seed", 0xD15C0u64)
            .with_param("threads", 4u64)
            .with_param("fft", true)
            .with_metrics(registry.snapshot())
    }

    #[test]
    fn json_round_trip() {
        let record = sample();
        let text = record.to_json_string();
        let back = RunRecord::from_json_str(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json_string(), sample().to_json_string());
    }

    #[test]
    fn rejects_other_schema_versions() {
        let mut value = sample().to_json();
        value.insert("schema_version", 99u64);
        let err = RunRecord::from_json(&value).unwrap_err();
        assert_eq!(
            err,
            ObsError::SchemaVersion {
                found: 99,
                expected: SCHEMA_VERSION
            }
        );
    }

    #[test]
    fn rejects_missing_fields() {
        for field in ["schema_version", "kind", "label", "params", "metrics"] {
            let value = sample().to_json();
            let Json::Obj(mut map) = value else {
                unreachable!()
            };
            map.remove(field);
            assert!(RunRecord::from_json(&Json::Obj(map)).is_err(), "{field}");
        }
    }

    #[test]
    fn v1_records_without_degraded_still_parse() {
        // A v1 document: no `degraded` member, schema_version 1.
        let mut value = sample().to_json();
        value.insert("schema_version", 1u64);
        let Json::Obj(mut map) = value else {
            unreachable!()
        };
        map.remove("degraded");
        let back = RunRecord::from_json(&Json::Obj(map)).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(!back.degraded, "v1 records default to degraded = false");
        assert_eq!(back.kind, "discovery");
    }

    #[test]
    fn degraded_flag_round_trips() {
        let record = sample().with_degraded(true);
        let back = RunRecord::from_json_str(&record.to_json_string()).unwrap();
        assert_eq!(back, record);
        assert!(back.degraded);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn rejects_invalid_json_text() {
        assert!(matches!(
            RunRecord::from_json_str("{nope"),
            Err(ObsError::Parse(_))
        ));
    }
}
