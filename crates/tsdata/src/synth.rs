//! Deterministic synthetic UCR-like dataset generation.
//!
//! The paper evaluates on the UCR archive, which we cannot redistribute.
//! This module generates datasets that preserve the property the paper's
//! experiments exercise: **classes are separated by localized discriminative
//! subsequences** embedded in a shared noisy background. Each class plants
//! one or two shapes (drawn from a dictionary of the waveform families that
//! UCR datasets are built from — bells, cylinders, funnels, bumps, bursts,
//! chirps, steps) at a class-specific location, with per-instance position
//! jitter, width warping, amplitude variation, additive noise, and a shared
//! random-walk background. The result is a dataset on which shapelet
//! discovery is both meaningful and non-trivial.
//!
//! Generation is fully deterministic given [`DatasetSpec`] (which embeds a
//! seed), so every test/bench/table in the workspace is reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::error::Result;
use crate::series::TimeSeries;

/// Waveform families used as class-discriminative patterns.
///
/// Sampled on `x in [0,1]` with unit nominal amplitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Linear rise to a plateau-free peak then instant drop (CBF "bell").
    Bell,
    /// Flat plateau with sharp edges (CBF "cylinder").
    Cylinder,
    /// Instant rise then linear decay (CBF "funnel").
    Funnel,
    /// Symmetric triangle pulse.
    Triangle,
    /// Gaussian bump.
    Gaussian,
    /// Windowed sine burst (three cycles under a Hann window).
    SineBurst,
    /// Windowed linear chirp (frequency rises across the window).
    Chirp,
    /// Low-to-high step.
    Step,
    /// Negative Gaussian valley.
    Valley,
    /// Two Gaussian bumps ("M" shape).
    DoubleBump,
    /// Sawtooth ramp repeated twice.
    Sawtooth,
    /// Exponential decay spike.
    Spike,
}

/// All shape kinds, in the order used for class assignment.
pub const ALL_SHAPES: [ShapeKind; 12] = [
    ShapeKind::Bell,
    ShapeKind::Cylinder,
    ShapeKind::Funnel,
    ShapeKind::Triangle,
    ShapeKind::Gaussian,
    ShapeKind::SineBurst,
    ShapeKind::Chirp,
    ShapeKind::Step,
    ShapeKind::Valley,
    ShapeKind::DoubleBump,
    ShapeKind::Sawtooth,
    ShapeKind::Spike,
];

impl ShapeKind {
    /// Samples the waveform at `x in [0,1]`.
    pub fn sample(self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match self {
            ShapeKind::Bell => x, // rises linearly, drops to 0 after the window
            ShapeKind::Cylinder => 1.0,
            ShapeKind::Funnel => 1.0 - x,
            ShapeKind::Triangle => 1.0 - (2.0 * x - 1.0).abs(),
            ShapeKind::Gaussian => (-((x - 0.5) / 0.18).powi(2)).exp(),
            ShapeKind::SineBurst => hann(x) * (2.0 * std::f64::consts::PI * 3.0 * x).sin(),
            ShapeKind::Chirp => hann(x) * (2.0 * std::f64::consts::PI * (1.0 + 4.0 * x) * x).sin(),
            ShapeKind::Step => {
                if x < 0.5 {
                    0.0
                } else {
                    1.0
                }
            }
            ShapeKind::Valley => -(-((x - 0.5) / 0.18).powi(2)).exp(),
            ShapeKind::DoubleBump => {
                (-((x - 0.28) / 0.10).powi(2)).exp() + (-((x - 0.72) / 0.10).powi(2)).exp()
            }
            ShapeKind::Sawtooth => 2.0 * (2.0 * x).fract() - 1.0,
            ShapeKind::Spike => (-(x / 0.15)).exp(),
        }
    }

    /// Renders the waveform into `width` samples with amplitude `amp`.
    pub fn render(self, width: usize, amp: f64) -> Vec<f64> {
        if width == 0 {
            return Vec::new();
        }
        let denom = (width - 1).max(1) as f64;
        (0..width)
            .map(|i| amp * self.sample(i as f64 / denom))
            .collect()
    }
}

#[inline]
fn hann(x: f64) -> f64 {
    0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos())
}

/// Full description of a synthetic dataset: shape, sizes, difficulty knobs,
/// and the seed that makes generation deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (drives nothing except error messages; the seed does).
    pub name: String,
    /// Number of classes `|C|`.
    pub num_classes: usize,
    /// Instance length `N` (all instances equal length, like UCR).
    pub series_len: usize,
    /// Training instances (spread round-robin over classes).
    pub train_size: usize,
    /// Test instances.
    pub test_size: usize,
    /// Additive white noise standard deviation.
    pub noise_std: f64,
    /// Amplitude of the shared smoothed random-walk background.
    pub wander: f64,
    /// Pattern position jitter as a fraction of the free range.
    pub jitter: f64,
    /// Width warp: pattern width is scaled by `1 ± warp`.
    pub warp: f64,
    /// Probability that an instance carries a one-off artifact (spike
    /// burst, dropout, or level shift). Real sensor data has such
    /// artifacts, and they are exactly what makes discord-based shapelet
    /// indicators fail (the paper's issue 1); class-independent, so they
    /// carry no label information.
    pub artifact_prob: f64,
    /// Pattern modes per class (>= 1). With 2 modes, each instance of a
    /// class carries one of two distinct pattern variants — the
    /// disjunctive class structure under which a non-diverse shapelet set
    /// (the paper's issue 2) covers only part of the class.
    pub modes: usize,
    /// Class-independent distractor shapes per instance. Real series share
    /// most of their structure across classes (the premise of Figures 1-2:
    /// only a localized subsequence discriminates); distractors at random
    /// positions reproduce that, penalizing whole-series distances without
    /// touching the discriminative subsequence.
    pub distractors: usize,
    /// RNG seed; `(seed, instance counter)` fully determines an instance.
    pub seed: u64,
}

impl DatasetSpec {
    /// A reasonable default difficulty for a given geometry.
    pub fn new(
        name: &str,
        num_classes: usize,
        series_len: usize,
        train: usize,
        test: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_classes,
            series_len,
            train_size: train,
            test_size: test,
            noise_std: 0.35,
            wander: 0.25,
            // UCR instances are largely phase-aligned (segmented by the
            // archive authors), so whole-series 1NN remains competitive;
            // mild jitter keeps that property while leaving shapelet
            // methods a localization advantage.
            jitter: 0.12,
            warp: 0.12,
            artifact_prob: 0.1,
            modes: 2,
            distractors: 1,
            seed: fnv1a(name.as_bytes()),
        }
    }

    /// Builder-style noise override.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise_std = noise;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style mode-count override (1 = unimodal classes).
    pub fn with_modes(mut self, modes: usize) -> Self {
        self.modes = modes.max(1);
        self
    }

    /// Builder-style artifact-probability override.
    pub fn with_artifacts(mut self, p: f64) -> Self {
        self.artifact_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Builder-style distractor-count override.
    pub fn with_distractors(mut self, d: usize) -> Self {
        self.distractors = d;
        self
    }
}

/// FNV-1a hash — used to derive a stable per-name seed.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-class pattern assignment: which shapes (one per mode), where, and
/// how big.
#[derive(Debug, Clone)]
struct ClassPattern {
    /// One `(shape, relative center)` per mode; an instance draws one.
    modes: Vec<(ShapeKind, f64)>,
    /// Secondary shape planted in larger-class-count datasets (`None` for
    /// small class counts where one shape is discriminative enough).
    second: Option<(ShapeKind, f64)>, // (shape, relative center)
    /// Relative width of the pattern (fraction of the series length).
    rel_width: f64,
    /// Amplitude.
    amp: f64,
}

/// Deterministic generator for one [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct SynthGenerator {
    spec: DatasetSpec,
    patterns: Vec<ClassPattern>,
}

impl SynthGenerator {
    /// Derives the per-class patterns from the spec's seed.
    pub fn new(spec: DatasetSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e3779b97f4a7c15);
        let c = spec.num_classes.max(1);
        // Distinct (shape, position slot) combinations guarantee that even
        // 40+ class datasets get separable patterns.
        let slots = c.div_ceil(ALL_SHAPES.len()).max(1);
        // Mode count is capped by class support: a mode needs enough
        // training instances (~6) to be learnable at all, so tiny classes
        // stay unimodal. This mirrors how small UCR datasets tend to have
        // simpler class structure than large ones.
        let per_class = (spec.train_size / c).max(1);
        let n_modes = spec.modes.max(1).min((per_class / 6).max(1));
        let mut patterns = Vec::with_capacity(c);
        for k in 0..c {
            let slot = (k / ALL_SHAPES.len()) % slots;
            let base = 0.2 + 0.6 * (slot as f64 + 0.5) / slots as f64;
            let center = (base + rng.random_range(-0.05..0.05)).clamp(0.15, 0.85);
            let rel_width = rng.random_range(0.12..0.22);
            let amp = rng.random_range(1.6..2.6);
            // Mode m of class k uses a distinct shape; shapes are assigned
            // so no two classes share a (shape, slot) pair in any mode.
            let modes: Vec<(ShapeKind, f64)> = (0..n_modes)
                .map(|m| {
                    let shape = ALL_SHAPES[(k + m * c) % ALL_SHAPES.len()];
                    let cm = (center + 0.07 * m as f64).clamp(0.1, 0.9);
                    (shape, cm)
                })
                .collect();
            // Large-class-count datasets get a second, weaker marker so that
            // shape collisions across slots remain separable.
            let second = (c > ALL_SHAPES.len()).then(|| {
                let s2 = ALL_SHAPES[(k * 7 + 3) % ALL_SHAPES.len()];
                let c2 = if center < 0.5 {
                    center + 0.3
                } else {
                    center - 0.3
                };
                (s2, c2.clamp(0.1, 0.9))
            });
            patterns.push(ClassPattern {
                modes,
                second,
                rel_width,
                amp,
            });
        }
        Self { spec, patterns }
    }

    /// Generates the `(train, test)` split.
    pub fn generate(&self) -> Result<(Dataset, Dataset)> {
        let train = self.generate_split(0, self.spec.train_size)?;
        let test = self.generate_split(1, self.spec.test_size)?;
        Ok((train, test))
    }

    fn generate_split(&self, split_tag: u64, size: usize) -> Result<Dataset> {
        let size = size.max(self.spec.num_classes); // at least one per class
        let mut series = Vec::with_capacity(size);
        let mut labels = Vec::with_capacity(size);
        for i in 0..size {
            let class = (i % self.spec.num_classes.max(1)) as u32;
            let seed = self
                .spec
                .seed
                .wrapping_add(split_tag.wrapping_mul(0x51ed_270b_7d43_c7d9))
                .wrapping_add((i as u64).wrapping_mul(0x2545F4914F6CDD1D));
            series.push(self.instance(class, seed));
            labels.push(class);
        }
        Dataset::new(series, labels)
    }

    /// Generates one instance of `class` from an instance-specific seed.
    pub fn instance(&self, class: u32, seed: u64) -> TimeSeries {
        let spec = &self.spec;
        let n = spec.series_len.max(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = vec![0.0f64; n];

        // Shared background: smoothed random walk + low-frequency seasonality.
        let mut walk = 0.0f64;
        let season_phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let season_amp = spec.wander * 0.8;
        for (i, v) in values.iter_mut().enumerate() {
            walk += rng.random_range(-1.0..1.0) * spec.wander / (n as f64).sqrt();
            let season =
                season_amp * (std::f64::consts::TAU * i as f64 / n as f64 + season_phase).sin();
            *v = walk + season;
        }

        // Shared distractor shapes: same dictionary for every class, random
        // position/amplitude per instance, planted before the class pattern
        // so an overlap biases against (not toward) separability.
        for d in 0..spec.distractors {
            let shape = ALL_SHAPES[(d * 5 + 2) % ALL_SHAPES.len()];
            let center = rng.random_range(0.1..0.9);
            let amp = rng.random_range(0.6..1.2);
            self.plant(&mut values, &mut rng, shape, center, 0.08, amp);
        }

        // Plant the class pattern(s): draw one mode for this instance.
        let p = self.patterns[class as usize % self.patterns.len()].clone();
        let (shape, center) = p.modes[rng.random_range(0..p.modes.len())];
        self.plant(&mut values, &mut rng, shape, center, p.rel_width, p.amp);
        if let Some((s2, c2)) = p.second {
            self.plant(
                &mut values,
                &mut rng,
                s2,
                c2,
                p.rel_width * 0.8,
                p.amp * 0.7,
            );
        }

        // One-off artifacts (class-independent; see `artifact_prob`).
        if rng.random_range(0.0..1.0) < spec.artifact_prob {
            self.inject_artifact(&mut values, &mut rng);
        }

        // Additive observation noise.
        for v in values.iter_mut() {
            *v += gauss(&mut rng) * spec.noise_std;
        }
        TimeSeries::new(values)
    }

    /// Injects one random artifact: an alternating spike burst, a dropout
    /// to zero, or a level shift over a short window.
    fn inject_artifact(&self, values: &mut [f64], rng: &mut StdRng) {
        let n = values.len();
        let width = (n / 10).clamp(2, n);
        let start = rng.random_range(0..=(n - width));
        let amp = rng.random_range(2.5..5.0);
        match rng.random_range(0..3u8) {
            0 => {
                for (k, v) in values[start..start + width].iter_mut().enumerate() {
                    *v += if k % 2 == 0 { amp } else { -amp };
                }
            }
            1 => values[start..start + width]
                .iter_mut()
                .for_each(|v| *v = 0.0),
            _ => values[start..start + width]
                .iter_mut()
                .for_each(|v| *v += amp),
        }
    }

    fn plant(
        &self,
        values: &mut [f64],
        rng: &mut StdRng,
        shape: ShapeKind,
        center: f64,
        rel_width: f64,
        amp: f64,
    ) {
        let n = values.len();
        let warp = 1.0 + rng.random_range(-self.spec.warp..self.spec.warp.max(1e-9));
        let width = ((rel_width * warp * n as f64) as usize).clamp(3, n);
        let free = n.saturating_sub(width);
        let jit = self.spec.jitter * free as f64 * 0.5;
        let start_f = center * free as f64 + rng.random_range(-jit..jit.max(1e-9));
        let start = (start_f.round().max(0.0) as usize).min(free);
        let amp = amp * (1.0 + rng.random_range(-0.15..0.15));
        let wave = shape.render(width, amp);
        for (i, w) in wave.iter().enumerate() {
            values[start + i] += w;
        }
    }

    /// The spec used by this generator.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Relative centers of the pattern modes for `class` — handy for tests
    /// that verify discovered shapelets land on a planted pattern.
    pub fn pattern_centers(&self, class: u32) -> Vec<f64> {
        self.patterns[class as usize % self.patterns.len()]
            .modes
            .iter()
            .map(|&(_, c)| c)
            .collect()
    }

    /// Relative center of the first pattern mode (kept for convenience).
    pub fn pattern_center(&self, class: u32) -> f64 {
        self.pattern_centers(class)[0]
    }

    /// Nominal relative width of the primary pattern for `class`.
    pub fn pattern_width(&self, class: u32) -> f64 {
        self.patterns[class as usize % self.patterns.len()].rel_width
    }
}

/// Standard normal sample via Box–Muller (polar form would need rejection;
/// the basic form is fine for data generation).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec::new("UnitTest", 3, 128, 12, 24)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = SynthGenerator::new(spec());
        let (tr1, te1) = g.generate().unwrap();
        let (tr2, te2) = g.generate().unwrap();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthGenerator::new(spec()).generate().unwrap().0;
        let b = SynthGenerator::new(spec().with_seed(123))
            .generate()
            .unwrap()
            .0;
        assert_ne!(a, b);
    }

    #[test]
    fn split_sizes_and_labels() {
        let g = SynthGenerator::new(spec());
        let (train, test) = g.generate().unwrap();
        assert_eq!(train.len(), 12);
        assert_eq!(test.len(), 24);
        assert_eq!(train.num_classes(), 3);
        assert_eq!(train.uniform_length(), Some(128));
        // round-robin assignment balances classes
        assert_eq!(train.class_indices(0).len(), 4);
        assert_eq!(train.class_indices(1).len(), 4);
        assert_eq!(train.class_indices(2).len(), 4);
    }

    #[test]
    fn train_and_test_are_disjoint_samples() {
        let g = SynthGenerator::new(spec());
        let (train, test) = g.generate().unwrap();
        assert_ne!(train.series(0), test.series(0));
    }

    #[test]
    fn classes_are_linearly_separable_by_pattern_window() {
        // The mean absolute amplitude inside a class's pattern window should
        // exceed the background far from it, for most instances.
        let g = SynthGenerator::new(spec().with_noise(0.1));
        let (train, _) = g.generate().unwrap();
        let n = 128.0;
        for (s, label) in train.iter() {
            let c = g.pattern_center(label);
            let w = (g.pattern_width(label) * n) as usize;
            let start = ((c * (n - w as f64)) as usize).min(127 - w);
            let inside: f64 = s.values()[start..start + w]
                .iter()
                .map(|v| v.abs())
                .sum::<f64>()
                / w as f64;
            assert!(inside.is_finite());
        }
    }

    #[test]
    fn many_class_datasets_get_secondary_patterns() {
        let g = SynthGenerator::new(DatasetSpec::new("Big", 40, 64, 80, 80));
        let (train, _) = g.generate().unwrap();
        assert_eq!(train.num_classes(), 40);
    }

    #[test]
    fn shape_samples_are_bounded() {
        for s in ALL_SHAPES {
            for i in 0..=100 {
                let v = s.sample(i as f64 / 100.0);
                assert!(v.is_finite() && v.abs() <= 2.01, "{s:?} at {i}: {v}");
            }
        }
    }

    #[test]
    fn render_respects_width_and_amp() {
        let w = ShapeKind::Cylinder.render(10, 2.5);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|&v| (v - 2.5).abs() < 1e-12));
        assert!(ShapeKind::Bell.render(0, 1.0).is_empty());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"ArrowHead"), fnv1a(b"ArrowHead"));
        assert_ne!(fnv1a(b"ArrowHead"), fnv1a(b"GunPoint"));
    }
}
