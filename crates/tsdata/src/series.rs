//! The [`TimeSeries`] container and normalization helpers.

use std::ops::Index;

/// An ordered sequence of real values (Definition 1 of the paper).
///
/// The container is deliberately thin — a boxed slice of `f64` — so that the
/// distance kernels in `ips-distance` can operate on plain `&[f64]` without
/// conversion. Class labels live in [`crate::Dataset`], not here, so a
/// `TimeSeries` can also represent unlabeled data (e.g. a concatenated class
/// series, a shapelet, or a streaming window).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Box<[f64]>,
}

impl TimeSeries {
    /// Wraps a vector of values. Accepts empty series; most algorithms
    /// validate lengths at their own entry points.
    pub fn new(values: Vec<f64>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Subsequence `T[a, a+len)` (half-open; Definition 3 uses inclusive
    /// endpoints, we use the Rust convention).
    ///
    /// # Panics
    /// Panics if the range exceeds the series length.
    #[inline]
    pub fn subsequence(&self, start: usize, len: usize) -> &[f64] {
        &self.values[start..start + len]
    }

    /// Number of subsequences of length `len` (i.e. `N - len + 1`), or zero
    /// when the series is shorter than `len`.
    #[inline]
    pub fn num_subsequences(&self, len: usize) -> usize {
        if len == 0 || self.values.len() < len {
            0
        } else {
            self.values.len() - len + 1
        }
    }

    /// Iterator over all subsequences of length `len` with their start
    /// offsets.
    pub fn subsequences(&self, len: usize) -> impl Iterator<Item = (usize, &[f64])> {
        self.values
            .windows(len.max(1))
            .enumerate()
            .take(self.num_subsequences(len))
    }

    /// Arithmetic mean of the values; `0.0` for an empty series.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Population standard deviation; `0.0` for an empty series.
    pub fn std(&self) -> f64 {
        std(&self.values)
    }

    /// Returns a z-normalized copy of the series.
    pub fn znormalized(&self) -> TimeSeries {
        TimeSeries::new(znormalize(&self.values))
    }

    /// Consumes the series, returning the underlying values.
    pub fn into_values(self) -> Vec<f64> {
        self.values.into_vec()
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

/// Arithmetic mean of a slice; `0.0` when empty.
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice; `0.0` when empty.
#[inline]
pub fn std(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Z-normalizes a slice into a fresh vector.
///
/// Constant (zero-variance) slices normalize to all zeros rather than NaN —
/// the convention used by the matrix profile literature, where constant
/// regions would otherwise poison every nearest-neighbor distance.
pub fn znormalize(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    znormalize_in_place(&mut out);
    out
}

/// In-place variant of [`znormalize`].
pub fn znormalize_in_place(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std(xs);
    if s <= f64::EPSILON {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        xs.iter_mut().for_each(|x| *x = (*x - m) / s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let t = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t[2], 3.0);
        assert_eq!(t.subsequence(1, 2), &[2.0, 3.0]);
        assert_eq!(t.num_subsequences(2), 3);
        assert_eq!(t.num_subsequences(5), 0);
        assert_eq!(t.num_subsequences(0), 0);
    }

    #[test]
    fn subsequence_iterator_yields_offsets() {
        let t = TimeSeries::new(vec![0.0, 1.0, 2.0]);
        let subs: Vec<_> = t.subsequences(2).collect();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], (0, &[0.0, 1.0][..]));
        assert_eq!(subs[1], (1, &[1.0, 2.0][..]));
    }

    #[test]
    fn mean_and_std() {
        let t = TimeSeries::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_produces_zero_mean_unit_std() {
        let z = znormalize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_constant_slice_is_zeros() {
        let z = znormalize(&[3.0; 7]);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_series_is_safe() {
        let t = TimeSeries::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.std(), 0.0);
        assert_eq!(t.num_subsequences(1), 0);
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1.5, -2.5];
        let t: TimeSeries = v.clone().into();
        assert_eq!(t.values(), &v[..]);
        assert_eq!(t.clone().into_values(), v);
        let t2: TimeSeries = (&v[..]).into();
        assert_eq!(t, t2);
    }
}
