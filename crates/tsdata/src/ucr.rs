//! Reader/writer for the UCR archive's on-disk format.
//!
//! The 2018 UCR archive distributes each dataset as `<Name>_TRAIN.tsv` /
//! `<Name>_TEST.tsv`: one instance per line, the class label in the first
//! column, tab-separated values. Older releases use comma separation; this
//! loader accepts tabs, commas, and runs of spaces interchangeably, skips
//! blank lines, and treats the UCR missing-value marker `NaN` as an error
//! (the 46 datasets used by the paper have no missing values).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::series::TimeSeries;

/// Parses UCR-format text into a [`Dataset`].
///
/// Labels may be written as integers (`2`) or integral floats (`2.0`) —
/// both occur in the archive. Negative labels (e.g. `-1` in some two-class
/// sets) are remapped by [`normalize_labels`] to a dense `0..C` range.
pub fn parse_ucr<R: Read>(reader: R) -> Result<Dataset> {
    let buf = BufReader::new(reader);
    let mut series = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(|c: char| c == '\t' || c == ',' || c.is_whitespace());
        let label_tok = fields.next().ok_or_else(|| Error::Parse {
            line: lineno + 1,
            message: "missing label field".into(),
        })?;
        let label = parse_label(label_tok).ok_or_else(|| Error::Parse {
            line: lineno + 1,
            message: format!("cannot parse label {label_tok:?}"),
        })?;
        let mut values = Vec::new();
        for tok in fields {
            if tok.is_empty() {
                continue; // collapsed whitespace runs
            }
            let v: f64 = tok.parse().map_err(|_| Error::Parse {
                line: lineno + 1,
                message: format!("cannot parse value {tok:?}"),
            })?;
            if v.is_nan() {
                return Err(Error::Parse {
                    line: lineno + 1,
                    message: "missing values (NaN) are not supported".into(),
                });
            }
            values.push(v);
        }
        if values.is_empty() {
            return Err(Error::Parse {
                line: lineno + 1,
                message: "instance has no values".into(),
            });
        }
        raw_labels.push(label);
        series.push(TimeSeries::new(values));
    }
    if series.is_empty() {
        return Err(Error::Invalid("file contains no instances".into()));
    }
    let labels = normalize_labels(&raw_labels);
    Dataset::new(series, labels)
}

/// Loads a single UCR-format file.
///
/// Any failure — the file missing, unreadable, or malformed — is wrapped
/// in [`Error::InFile`] so the message names both the offending path and
/// (for parse errors) the line number.
pub fn load_file(path: impl AsRef<Path>) -> Result<Dataset> {
    let path = path.as_ref();
    File::open(path)
        .map_err(Error::from)
        .and_then(parse_ucr)
        .map_err(|e| e.in_file(path))
}

/// Loads the conventional `<dir>/<name>/<name>_TRAIN.tsv` +
/// `<name>_TEST.tsv` pair, falling back to `.txt` extensions used by the
/// 2015 archive.
pub fn load_pair(dir: impl AsRef<Path>, name: &str) -> Result<(Dataset, Dataset)> {
    let dir = dir.as_ref().join(name);
    let open = |suffix: &str| -> Result<Dataset> {
        for ext in ["tsv", "txt", "csv"] {
            let p = dir.join(format!("{name}_{suffix}.{ext}"));
            if p.exists() {
                return load_file(p);
            }
        }
        Err(Error::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no {name}_{suffix}.(tsv|txt|csv) under {}", dir.display()),
        )))
    };
    Ok((open("TRAIN")?, open("TEST")?))
}

/// Writes a dataset in UCR TSV format (label first, then values).
pub fn write_tsv<W: Write>(writer: W, data: &Dataset) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for (s, label) in data.iter() {
        write!(w, "{label}")?;
        for v in s.values() {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a dataset to a file in UCR TSV format.
pub fn write_file(path: impl AsRef<Path>, data: &Dataset) -> Result<()> {
    write_tsv(File::create(path)?, data)
}

/// Remaps arbitrary integer labels onto a dense `0..C` range, preserving the
/// numeric order of the original labels.
pub fn normalize_labels(raw: &[i64]) -> Vec<u32> {
    let mut distinct: Vec<i64> = raw.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    raw.iter()
        .map(|l| distinct.binary_search(l).expect("label present") as u32)
        .collect()
}

fn parse_label(tok: &str) -> Option<i64> {
    if let Ok(v) = tok.parse::<i64>() {
        return Some(v);
    }
    // Integral floats like "2.0000" appear in some archive files.
    let f: f64 = tok.parse().ok()?;
    (f.fract() == 0.0 && f.is_finite()).then_some(f as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tab_separated() {
        let text = "1\t0.5\t1.5\t2.5\n2\t-1.0\t0.0\t1.0\n";
        let d = parse_ucr(text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[0, 1]);
        assert_eq!(d.series(0).values(), &[0.5, 1.5, 2.5]);
    }

    #[test]
    fn parses_comma_and_space_separated() {
        let d = parse_ucr("1,1.0,2.0\n-1,3.0,4.0\n".as_bytes()).unwrap();
        assert_eq!(d.labels(), &[1, 0]); // -1 sorts before 1
        let d = parse_ucr("3  1.0  2.0\n4  3.0  4.0".as_bytes()).unwrap();
        assert_eq!(d.labels(), &[0, 1]);
    }

    #[test]
    fn parses_float_labels() {
        let d = parse_ucr("2.0\t9.0\t8.0\n1.0\t7.0\t6.0\n".as_bytes()).unwrap();
        assert_eq!(d.labels(), &[1, 0]);
    }

    #[test]
    fn skips_blank_lines() {
        let d = parse_ucr("\n1\t1.0\n\n2\t2.0\n\n".as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ucr("1\tfoo\n".as_bytes()).is_err());
        assert!(parse_ucr("abc\t1.0\n".as_bytes()).is_err());
        assert!(parse_ucr("1\n".as_bytes()).is_err()); // label but no values
        assert!(parse_ucr("".as_bytes()).is_err()); // empty file
        assert!(parse_ucr("1\tNaN\n".as_bytes()).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_ucr("1\t1.0\n2\tbad\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn malformed_file_error_names_path_and_line() {
        let dir = std::env::temp_dir().join(format!("ips_ucr_fixture_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("Broken_TRAIN.tsv");
        std::fs::write(&path, "1\t1.0\t2.0\n2\t1.0\toops\n").unwrap();
        let err = load_file(&path).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("Broken_TRAIN.tsv"), "{text}");
        assert!(text.contains("line 2"), "{text}");
        assert!(text.contains("oops"), "{text}");
        std::fs::remove_dir_all(&dir).ok();

        // A missing file also reports its path, wrapping the I/O cause.
        let err = load_file("/nonexistent/Nope_TRAIN.tsv").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("Nope_TRAIN.tsv"), "{text}");
        assert!(matches!(err, Error::InFile { .. }));
    }

    #[test]
    fn round_trips_through_tsv() {
        let d = Dataset::new(
            vec![
                TimeSeries::new(vec![1.0, 2.5]),
                TimeSeries::new(vec![-3.0, 0.25]),
            ],
            vec![0, 1],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &d).unwrap();
        let d2 = parse_ucr(&buf[..]).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn normalize_labels_is_dense_and_order_preserving() {
        assert_eq!(normalize_labels(&[5, -1, 5, 3]), vec![2, 0, 2, 1]);
    }
}
