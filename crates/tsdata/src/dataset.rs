//! The labeled [`Dataset`] container and class-wise concatenation.

use crate::error::{Error, Result};
use crate::series::TimeSeries;

/// A labeled collection of time series (Definition 2 of the paper).
///
/// Labels are small integers (`u32`); the set of distinct labels defines the
/// class set `C`. Series may have heterogeneous lengths — the algorithms that
/// require equal lengths (e.g. 1NN with plain ED) validate this themselves
/// via [`Dataset::uniform_length`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    series: Vec<TimeSeries>,
    labels: Vec<u32>,
}

impl Dataset {
    /// Builds a dataset from parallel vectors of series and labels.
    ///
    /// # Errors
    /// Returns [`Error::Invalid`] when the vectors differ in length or the
    /// dataset is empty.
    pub fn new(series: Vec<TimeSeries>, labels: Vec<u32>) -> Result<Self> {
        if series.len() != labels.len() {
            return Err(Error::Invalid(format!(
                "series/labels length mismatch: {} vs {}",
                series.len(),
                labels.len()
            )));
        }
        if series.is_empty() {
            return Err(Error::Invalid(
                "dataset must contain at least one series".into(),
            ));
        }
        Ok(Self { series, labels })
    }

    /// Number of time series instances `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the dataset has no instances. `Dataset::new` rejects empty
    /// datasets, so this is only `true` for the pathological default.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Instance `i`.
    #[inline]
    pub fn series(&self, i: usize) -> &TimeSeries {
        &self.series[i]
    }

    /// Label of instance `i`.
    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All instances.
    #[inline]
    pub fn all_series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// All labels, parallel to [`Dataset::all_series`].
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Sorted, de-duplicated class labels.
    pub fn classes(&self) -> Vec<u32> {
        let mut cs = self.labels.clone();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Number of distinct classes `|C|`.
    pub fn num_classes(&self) -> usize {
        self.classes().len()
    }

    /// Indices of the instances belonging to class `c` (the set `D_C`).
    pub fn class_indices(&self, c: u32) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] == c).collect()
    }

    /// Returns `Some(length)` when every instance has the same length.
    pub fn uniform_length(&self) -> Option<usize> {
        let n = self.series.first()?.len();
        self.series.iter().all(|s| s.len() == n).then_some(n)
    }

    /// Length of the shortest instance.
    pub fn min_length(&self) -> usize {
        self.series.iter().map(|s| s.len()).min().unwrap_or(0)
    }

    /// Concatenates the instances of class `c` in index order into one long
    /// series with boundary bookkeeping (the paper's `T_C`).
    pub fn concat_class(&self, c: u32) -> ClassConcat {
        ClassConcat::from_instances(
            self.class_indices(c)
                .into_iter()
                .map(|i| (i, self.series[i].values())),
        )
    }

    /// Checks every instance for content problems that the cheap structural
    /// checks in [`Dataset::new`] do not cover: empty instances and
    /// non-finite values (NaN or ±Inf). Returns the first offender so the
    /// caller can report exactly which instance and position is bad.
    ///
    /// # Errors
    /// [`Error::EmptySeries`] for an instance with no values,
    /// [`Error::NonFinite`] for the first NaN/Inf value encountered.
    pub fn validate(&self) -> Result<()> {
        for (i, s) in self.series.iter().enumerate() {
            if s.is_empty() {
                return Err(Error::EmptySeries { instance: i });
            }
            if let Some(p) = s.values().iter().position(|v| !v.is_finite()) {
                return Err(Error::NonFinite {
                    instance: i,
                    position: p,
                });
            }
        }
        Ok(())
    }

    /// Z-normalizes every instance, returning a new dataset (labels shared).
    pub fn znormalized(&self) -> Dataset {
        Dataset {
            series: self.series.iter().map(|s| s.znormalized()).collect(),
            labels: self.labels.clone(),
        }
    }

    /// Iterates `(series, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&TimeSeries, u32)> {
        self.series.iter().zip(self.labels.iter().copied())
    }

    /// Splits the dataset into per-class sub-datasets, preserving instance
    /// order. Each entry is `(class, dataset_of_that_class)`.
    pub fn split_by_class(&self) -> Vec<(u32, Dataset)> {
        self.classes()
            .into_iter()
            .map(|c| {
                let idx = self.class_indices(c);
                let series = idx.iter().map(|&i| self.series[i].clone()).collect();
                let labels = vec![c; idx.len()];
                (c, Dataset { series, labels })
            })
            .collect()
    }
}

/// A concatenation of several instances into one long series, remembering
/// where each instance starts — required so the instance profile can refuse
/// subsequences that straddle two instances and can exclude same-instance
/// matches (Definition 9's `m' != m`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassConcat {
    values: Vec<f64>,
    /// `(start_offset, instance_len, original_index)` per concatenated
    /// instance; `start_offset` is the position in `values`.
    segments: Vec<(usize, usize, usize)>,
}

impl ClassConcat {
    /// Builds a concatenation from `(original_index, values)` pairs.
    pub fn from_instances<'a>(items: impl Iterator<Item = (usize, &'a [f64])>) -> Self {
        let mut values = Vec::new();
        let mut segments = Vec::new();
        for (orig, vs) in items {
            segments.push((values.len(), vs.len(), orig));
            values.extend_from_slice(vs);
        }
        Self { values, segments }
    }

    /// The concatenated values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total concatenated length.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no instances were concatenated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of concatenated instances.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.segments.len()
    }

    /// `(start_offset, len, original_index)` of concatenated instance `i`.
    #[inline]
    pub fn segment(&self, i: usize) -> (usize, usize, usize) {
        self.segments[i]
    }

    /// Index of the instance that owns concatenated position `pos`, found by
    /// binary search over segment starts.
    pub fn instance_of(&self, pos: usize) -> usize {
        debug_assert!(pos < self.values.len());
        match self.segments.binary_search_by_key(&pos, |&(s, _, _)| s) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// True when the subsequence `[start, start+len)` lies entirely within a
    /// single instance (does not straddle a concatenation boundary).
    pub fn within_one_instance(&self, start: usize, len: usize) -> bool {
        if len == 0 || start + len > self.values.len() {
            return false;
        }
        let i = self.instance_of(start);
        let (s, l, _) = self.segments[i];
        start + len <= s + l
    }

    /// Maps a concatenated offset back to `(original_instance_index,
    /// offset_within_instance)`.
    pub fn to_instance_coords(&self, pos: usize) -> (usize, usize) {
        let i = self.instance_of(pos);
        let (s, _, orig) = self.segments[i];
        (orig, pos - s)
    }

    /// Start offsets of all valid (non-straddling) subsequences of length
    /// `len`.
    pub fn valid_starts(&self, len: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &(s, l, _) in &self.segments {
            if l >= len && len > 0 {
                out.extend(s..=s + l - len);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                TimeSeries::new(vec![0.0, 1.0, 2.0]),
                TimeSeries::new(vec![3.0, 4.0, 5.0]),
                TimeSeries::new(vec![6.0, 7.0, 8.0]),
                TimeSeries::new(vec![9.0, 10.0, 11.0]),
            ],
            vec![1, 2, 1, 2],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![TimeSeries::new(vec![1.0])], vec![1, 2]).is_err());
    }

    #[test]
    fn class_bookkeeping() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.classes(), vec![1, 2]);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.class_indices(1), vec![0, 2]);
        assert_eq!(d.class_indices(2), vec![1, 3]);
        assert_eq!(d.uniform_length(), Some(3));
        assert_eq!(d.min_length(), 3);
    }

    #[test]
    fn split_by_class_preserves_order_and_labels() {
        let d = toy();
        let parts = d.split_by_class();
        assert_eq!(parts.len(), 2);
        let (c, d1) = &parts[0];
        assert_eq!(*c, 1);
        assert_eq!(d1.len(), 2);
        assert_eq!(d1.series(0).values(), &[0.0, 1.0, 2.0]);
        assert_eq!(d1.series(1).values(), &[6.0, 7.0, 8.0]);
        assert!(d1.labels().iter().all(|&l| l == 1));
    }

    #[test]
    fn concat_tracks_boundaries() {
        let d = toy();
        let cc = d.concat_class(1);
        assert_eq!(cc.values(), &[0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        assert_eq!(cc.num_instances(), 2);
        assert_eq!(cc.segment(0), (0, 3, 0));
        assert_eq!(cc.segment(1), (3, 3, 2));
        assert_eq!(cc.instance_of(0), 0);
        assert_eq!(cc.instance_of(2), 0);
        assert_eq!(cc.instance_of(3), 1);
        assert_eq!(cc.instance_of(5), 1);
        assert_eq!(cc.to_instance_coords(4), (2, 1));
    }

    #[test]
    fn straddling_subsequences_are_rejected() {
        let d = toy();
        let cc = d.concat_class(1);
        assert!(cc.within_one_instance(0, 3));
        assert!(cc.within_one_instance(3, 3));
        assert!(!cc.within_one_instance(2, 2)); // crosses the 3-boundary
        assert!(!cc.within_one_instance(5, 2)); // runs off the end
        assert!(!cc.within_one_instance(0, 0)); // zero length is invalid
        assert_eq!(cc.valid_starts(2), vec![0, 1, 3, 4]);
        assert_eq!(cc.valid_starts(3), vec![0, 3]);
        assert_eq!(cc.valid_starts(4), Vec::<usize>::new());
    }

    #[test]
    fn ragged_lengths_detected() {
        let d = Dataset::new(
            vec![TimeSeries::new(vec![1.0, 2.0]), TimeSeries::new(vec![1.0])],
            vec![1, 1],
        )
        .unwrap();
        assert_eq!(d.uniform_length(), None);
        assert_eq!(d.min_length(), 1);
    }

    #[test]
    fn validate_accepts_clean_data_and_pinpoints_corruption() {
        assert!(toy().validate().is_ok());

        let d = Dataset::new(
            vec![
                TimeSeries::new(vec![0.0, 1.0]),
                TimeSeries::new(vec![2.0, f64::NAN, 3.0]),
            ],
            vec![0, 1],
        )
        .unwrap();
        match d.validate().unwrap_err() {
            Error::NonFinite { instance, position } => {
                assert_eq!((instance, position), (1, 1));
            }
            other => panic!("unexpected error: {other}"),
        }

        let d = Dataset::new(
            vec![TimeSeries::new(vec![1.0]), TimeSeries::new(vec![])],
            vec![0, 1],
        )
        .unwrap();
        match d.validate().unwrap_err() {
            Error::EmptySeries { instance } => assert_eq!(instance, 1),
            other => panic!("unexpected error: {other}"),
        }

        let d = Dataset::new(vec![TimeSeries::new(vec![f64::INFINITY])], vec![0]).unwrap();
        assert!(matches!(
            d.validate().unwrap_err(),
            Error::NonFinite {
                instance: 0,
                position: 0
            }
        ));
    }

    #[test]
    fn znormalized_dataset_has_unit_std_instances() {
        let d = toy().znormalized();
        for (s, _) in d.iter() {
            assert!(s.mean().abs() < 1e-12);
            assert!((s.std() - 1.0).abs() < 1e-12);
        }
    }
}
