//! Time series augmentation.
//!
//! Standard TSC augmentation transforms (jitter, scaling, window warping,
//! slicing), deterministic under a seed. Useful for stress-testing
//! classifiers (is the discovered shapelet robust to noise?) and for
//! enlarging tiny training sets like the 16-instance DiatomSizeReduction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::error::Result;
use crate::series::TimeSeries;

/// Adds i.i.d. Gaussian noise of standard deviation `sigma`.
pub fn jitter(series: &[f64], sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    series.iter().map(|v| v + gauss(&mut rng) * sigma).collect()
}

/// Scales the whole series by a random factor in `1 ± amount`.
pub fn scale(series: &[f64], amount: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let factor = 1.0 + rng.random_range(-amount..amount.max(1e-12));
    series.iter().map(|v| v * factor).collect()
}

/// Warps a random window of the series in time: a stretch factor in
/// `[1/(1+amount), 1+amount]` is applied to a window covering roughly a
/// third of the series, and the result is resampled back to the original
/// length (the classic "window warping" augmentation).
pub fn window_warp(series: &[f64], amount: f64, seed: u64) -> Vec<f64> {
    let n = series.len();
    if n < 6 {
        return series.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let w = n / 3;
    let start = rng.random_range(0..=(n - w));
    let stretch = if rng.random_range(0..2u8) == 0 {
        1.0 + rng.random_range(0.0..amount.max(1e-12))
    } else {
        1.0 / (1.0 + rng.random_range(0.0..amount.max(1e-12)))
    };
    let warped_w = ((w as f64 * stretch) as usize).max(2);
    let mut out = Vec::with_capacity(n + warped_w - w);
    out.extend_from_slice(&series[..start]);
    out.extend(resample_lin(&series[start..start + w], warped_w));
    out.extend_from_slice(&series[start + w..]);
    resample_lin(&out, n)
}

/// Extracts a random contiguous slice covering `fraction` of the series
/// and resamples it back to full length ("slicing" augmentation).
pub fn slice(series: &[f64], fraction: f64, seed: u64) -> Vec<f64> {
    let n = series.len();
    let keep = ((fraction.clamp(0.1, 1.0) * n as f64) as usize).clamp(2, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let start = rng.random_range(0..=(n - keep));
    resample_lin(&series[start..start + keep], n)
}

/// Augments a dataset: for each instance, `copies` transformed variants
/// are appended (labels preserved). Each copy applies jitter + scaling +
/// window warping with per-copy seeds derived from `seed`.
pub fn augment_dataset(data: &Dataset, copies: usize, sigma: f64, seed: u64) -> Result<Dataset> {
    let mut series: Vec<TimeSeries> = data.all_series().to_vec();
    let mut labels = data.labels().to_vec();
    for i in 0..data.len() {
        for c in 0..copies {
            let s = seed
                .wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .wrapping_add((c as u64).wrapping_mul(0x2545F4914F6CDD1D));
            let v = data.series(i).values();
            let v = jitter(v, sigma, s);
            let v = scale(&v, 0.1, s ^ 1);
            let v = window_warp(&v, 0.1, s ^ 2);
            series.push(TimeSeries::new(v));
            labels.push(data.label(i));
        }
    }
    Dataset::new(series, labels)
}

fn resample_lin(values: &[f64], dim: usize) -> Vec<f64> {
    if values.is_empty() || dim == 0 {
        return Vec::new();
    }
    if values.len() == 1 {
        return vec![values[0]; dim];
    }
    if dim == 1 {
        return vec![values[values.len() / 2]];
    }
    let scale = (values.len() - 1) as f64 / (dim - 1) as f64;
    (0..dim)
        .map(|i| {
            let x = i as f64 * scale;
            let lo = x.floor() as usize;
            let hi = (lo + 1).min(values.len() - 1);
            let frac = x - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn base() -> Vec<f64> {
        (0..64).map(|i| (i as f64 * 0.3).sin() * 2.0).collect()
    }

    #[test]
    fn jitter_preserves_length_and_is_seeded() {
        let s = base();
        let a = jitter(&s, 0.1, 1);
        let b = jitter(&s, 0.1, 1);
        let c = jitter(&s, 0.1, 2);
        assert_eq!(a.len(), s.len());
        assert_eq!(a, b);
        assert_ne!(a, c);
        // noise magnitude is plausible
        let rms: f64 = a
            .iter()
            .zip(&s)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
            / (s.len() as f64).sqrt();
        assert!(rms < 0.5, "rms {rms}");
    }

    #[test]
    fn scale_is_a_pure_multiplication() {
        let s = base();
        let a = scale(&s, 0.2, 9);
        let factor = a[1] / s[1];
        for (x, y) in a.iter().zip(&s) {
            assert!((x - y * factor).abs() < 1e-12);
        }
        assert!((0.8..=1.2).contains(&factor));
    }

    #[test]
    fn warp_and_slice_preserve_length_and_range() {
        let s = base();
        for seed in 0..5 {
            let w = window_warp(&s, 0.2, seed);
            assert_eq!(w.len(), s.len());
            let sl = slice(&s, 0.8, seed);
            assert_eq!(sl.len(), s.len());
            let (lo, hi) = s
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            for v in w.iter().chain(&sl) {
                assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn tiny_series_pass_through_warp() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(window_warp(&s, 0.2, 1), s.to_vec());
    }

    #[test]
    fn augment_dataset_multiplies_and_preserves_labels() {
        let (train, _) = registry::load("ItalyPowerDemand").unwrap();
        let aug = augment_dataset(&train, 2, 0.05, 42).unwrap();
        assert_eq!(aug.len(), train.len() * 3);
        // originals come first, unchanged
        for i in 0..train.len() {
            assert_eq!(aug.series(i), train.series(i));
            assert_eq!(aug.label(i), train.label(i));
        }
        // copies carry the source labels
        for i in 0..train.len() {
            for c in 0..2 {
                let j = train.len() + i * 2 + c;
                assert_eq!(aug.label(j), train.label(i));
                assert_eq!(aug.series(j).len(), train.series(i).len());
            }
        }
    }
}
