//! Time series and dataset containers for the IPS reproduction.
//!
//! This crate is the data substrate of the workspace: it defines the
//! [`TimeSeries`] and [`Dataset`] containers used by every other crate,
//! z-normalization helpers, concatenation with instance-boundary tracking
//! (needed by the instance profile), a loader/writer for the UCR archive's
//! tab-separated format, and a deterministic synthetic generator that stands
//! in for the UCR archive itself (see `DESIGN.md` §2 for the substitution
//! rationale).
//!
//! # Quick example
//!
//! ```
//! use ips_tsdata::{registry, Dataset};
//!
//! let (train, test) = registry::load("ArrowHead").expect("known dataset");
//! assert_eq!(train.num_classes(), 3);
//! assert!(train.len() > 0 && test.len() > 0);
//! assert_eq!(train.series(0).len(), train.series(1).len());
//! ```

pub mod augment;
pub mod dataset;
pub mod error;
pub mod registry;
pub mod series;
pub mod synth;
pub mod ucr;

pub use augment::augment_dataset;
pub use dataset::{ClassConcat, Dataset};
pub use error::{Error, Result};
pub use series::{znormalize, znormalize_in_place, TimeSeries};
pub use synth::{DatasetSpec, ShapeKind, SynthGenerator};
