//! Error type shared by the data-loading and generation paths.

use std::fmt;

/// Convenience alias used throughout `ips-tsdata`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing, loading, or generating datasets.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A malformed record in a UCR-format file (line number, explanation).
    Parse { line: usize, message: String },
    /// The dataset violates a structural invariant (e.g. empty, ragged
    /// lengths where equal lengths are required, unknown class label).
    Invalid(String),
    /// A dataset name not present in the built-in registry.
    UnknownDataset(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            Error::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
            Error::UnknownDataset(name) => {
                write!(f, "dataset {name:?} is not in the built-in registry")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = Error::UnknownDataset("Nope".into());
        assert!(e.to_string().contains("Nope"));
        let e = Error::Invalid("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = inner.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
