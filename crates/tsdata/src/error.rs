//! Error type shared by the data-loading and generation paths.

use std::fmt;
use std::path::PathBuf;

/// Convenience alias used throughout `ips-tsdata`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing, loading, generating, or validating
/// datasets.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A malformed record in a UCR-format file (line number, explanation).
    Parse { line: usize, message: String },
    /// The dataset violates a structural invariant (e.g. empty, ragged
    /// lengths where equal lengths are required, unknown class label).
    Invalid(String),
    /// A dataset name not present in the built-in registry.
    UnknownDataset(String),
    /// An instance contains a non-finite value (NaN or ±Inf) at the given
    /// position — reported by [`crate::Dataset::validate`].
    NonFinite { instance: usize, position: usize },
    /// An instance has no values — reported by
    /// [`crate::Dataset::validate`].
    EmptySeries { instance: usize },
    /// An error raised while loading a specific file, wrapping the
    /// underlying cause with the path for actionable messages.
    InFile { path: PathBuf, source: Box<Error> },
}

impl Error {
    /// Wraps `self` with the path of the file it was raised for.
    pub fn in_file(self, path: impl Into<PathBuf>) -> Self {
        Error::InFile {
            path: path.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            Error::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
            Error::UnknownDataset(name) => {
                write!(f, "dataset {name:?} is not in the built-in registry")
            }
            Error::NonFinite { instance, position } => write!(
                f,
                "instance {instance} has a non-finite value at position {position}"
            ),
            Error::EmptySeries { instance } => {
                write!(f, "instance {instance} has no values")
            }
            Error::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = Error::UnknownDataset("Nope".into());
        assert!(e.to_string().contains("Nope"));
        let e = Error::Invalid("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = inner.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn validation_variants_name_the_instance() {
        let e = Error::NonFinite {
            instance: 4,
            position: 17,
        };
        assert!(e.to_string().contains("instance 4"));
        assert!(e.to_string().contains("position 17"));
        let e = Error::EmptySeries { instance: 2 };
        assert!(e.to_string().contains("instance 2"));
    }

    #[test]
    fn in_file_wrapping_keeps_path_and_cause() {
        let e = Error::Parse {
            line: 7,
            message: "bad float".into(),
        }
        .in_file("/tmp/Foo_TRAIN.tsv");
        let text = e.to_string();
        assert!(text.contains("Foo_TRAIN.tsv"), "{text}");
        assert!(text.contains("line 7"), "{text}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
