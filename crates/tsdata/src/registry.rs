//! Built-in registry of the 46 UCR datasets used by the paper's evaluation.
//!
//! Each entry records the dataset geometry (classes, length, train/test
//! sizes) from the UCR archive, **scaled down** where the original is too
//! large for a laptop-scale reproduction (the `scaled` flag marks these; the
//! original sizes are retained in `orig_*` fields so the scaling is
//! auditable). `load(name)` deterministically synthesizes the dataset via
//! [`crate::synth`]; `load_real` pulls the true archive from disk when the
//! user has it.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::synth::{DatasetSpec, SynthGenerator};
use crate::ucr;

/// Geometry and provenance of one registry dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetInfo {
    /// UCR dataset name.
    pub name: &'static str,
    /// Number of classes.
    pub num_classes: usize,
    /// Instance length used by the synthetic stand-in (possibly scaled).
    pub series_len: usize,
    /// Training-set size used here (possibly scaled).
    pub train_size: usize,
    /// Test-set size used here (possibly scaled).
    pub test_size: usize,
    /// Original UCR instance length.
    pub orig_len: usize,
    /// Original UCR train size.
    pub orig_train: usize,
    /// Original UCR test size.
    pub orig_test: usize,
    /// Noise level driving dataset difficulty (per-mille, so the table stays
    /// `Copy`); divide by 1000 for the std-dev handed to the generator.
    pub noise_milli: u32,
    /// Pattern modes per class. Derived from the paper's own Table VI: a
    /// published IPS-over-BASE gap above 10 accuracy points marks datasets
    /// whose class structure rewards shapelet *diversity*, synthesized here
    /// as two pattern modes per class (see DESIGN.md §2).
    pub modes: u8,
}

/// Instance-length cap applied by [`DatasetInfo::grid_spec`]. Chosen so a
/// conformance cell (one method fit + accuracy) stays in the tens of
/// milliseconds even for the registry's largest geometries.
pub const GRID_LEN_CAP: usize = 96;

/// Floor on the grid train-set size (subject to two instances per class).
pub const GRID_TRAIN_FLOOR: usize = 16;

/// Floor on the grid test-set size (subject to two instances per class).
pub const GRID_TEST_FLOOR: usize = 20;

impl DatasetInfo {
    /// True when any dimension was scaled down from the UCR original.
    pub fn scaled(&self) -> bool {
        self.series_len != self.orig_len
            || self.train_size != self.orig_train
            || self.test_size != self.orig_test
    }

    /// The synthetic generation spec for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        DatasetSpec::new(
            self.name,
            self.num_classes,
            self.series_len,
            self.train_size,
            self.test_size,
        )
        .with_noise(self.noise_milli as f64 / 1000.0)
        .with_modes(self.modes as usize)
    }

    /// The *conformance-grid* spec for this dataset: the same generator,
    /// noise, and modes as [`spec`](Self::spec) — so every dataset keeps
    /// its identity (class count, difficulty, disjunctive structure) —
    /// with geometry capped to keep a full method × dataset × threads ×
    /// chunk sweep CI-sized. Lengths cap at [`GRID_LEN_CAP`]; instance
    /// counts cap at twice the class count (floored at
    /// [`GRID_TRAIN_FLOOR`] / [`GRID_TEST_FLOOR`]), which preserves at
    /// least two instances per class for stratified sampling.
    ///
    /// Like `spec()`, the output is a pure function of the registry
    /// entry, so grid datasets are bit-identical across processes and
    /// machines.
    pub fn grid_spec(&self) -> DatasetSpec {
        let per_class = 2 * self.num_classes;
        DatasetSpec::new(
            self.name,
            self.num_classes,
            self.series_len.min(GRID_LEN_CAP),
            self.train_size.min(per_class.max(GRID_TRAIN_FLOOR)),
            self.test_size.min(per_class.max(GRID_TEST_FLOOR)),
        )
        .with_noise(self.noise_milli as f64 / 1000.0)
        .with_modes(self.modes as usize)
    }

    /// The *scaled* spec for this dataset: the same name-derived seed,
    /// class count, noise, and mode structure as [`spec`](Self::spec) —
    /// so the dataset keeps its identity — with instance counts **and**
    /// series length multiplied by `factor` (floored at 1). This is the
    /// scaling benchmark's workload axis: `factor ∈` [`SCALE_FACTORS`]
    /// produces datasets 10–100× the registry geometry, on which dense
    /// candidate enumeration is measured against sampled discovery.
    ///
    /// Like every spec here, the output is a pure function of the
    /// registry entry and `factor`, so scaled datasets are bit-identical
    /// across processes and machines. Note the generator caps *effective*
    /// modes at `per_class_instances / 6`; registry entries keep enough
    /// instances per class that the requested mode count is already in
    /// effect at factor 1, so scaling does not change class structure.
    pub fn scaled_spec(&self, factor: usize) -> DatasetSpec {
        let factor = factor.max(1);
        DatasetSpec::new(
            self.name,
            self.num_classes,
            self.series_len * factor,
            self.train_size * factor,
            self.test_size * factor,
        )
        .with_noise(self.noise_milli as f64 / 1000.0)
        .with_modes(self.modes as usize)
    }
}

/// The scale factors exercised by the scaling benchmark
/// (`bench_scaling`); [`DatasetInfo::scaled_spec`] accepts any factor ≥ 1.
pub const SCALE_FACTORS: [usize; 2] = [10, 100];

macro_rules! entry {
    ($name:literal, $c:expr, $len:expr, $tr:expr, $te:expr, $olen:expr, $otr:expr, $ote:expr, $noise:expr, $modes:expr) => {
        DatasetInfo {
            name: $name,
            num_classes: $c,
            series_len: $len,
            train_size: $tr,
            test_size: $te,
            orig_len: $olen,
            orig_train: $otr,
            orig_test: $ote,
            noise_milli: $noise,
            modes: $modes,
        }
    };
}

/// The 46 datasets of Table IV in the paper's order, plus `MoteStrain`
/// (used by Tables II/VII and Fig. 12 but absent from Table IV).
///
/// Columns: classes, synthetic (len, train, test), original (len, train,
/// test), noise (per-mille). Lengths are capped at 512 and instance counts
/// at ~200 to keep the full Table IV sweep tractable on one machine; the
/// caps are recorded via the `orig_*` columns.
pub const REGISTRY: [DatasetInfo; 47] = [
    entry!("ArrowHead", 3, 251, 36, 175, 251, 36, 175, 380, 2),
    entry!("Beef", 5, 470, 30, 30, 470, 30, 30, 450, 2),
    entry!("BeetleFly", 2, 512, 20, 20, 512, 20, 20, 350, 2),
    entry!("CBF", 3, 128, 30, 200, 128, 30, 900, 300, 2),
    entry!(
        "ChlorineConcentration",
        3,
        166,
        100,
        200,
        166,
        467,
        3840,
        500,
        1
    ),
    entry!("Coffee", 2, 286, 28, 28, 286, 28, 28, 250, 1),
    entry!("Computers", 2, 512, 100, 100, 720, 250, 250, 420, 1),
    entry!("CricketZ", 12, 300, 96, 96, 300, 390, 390, 420, 2),
    entry!("DiatomSizeReduction", 4, 345, 16, 120, 345, 16, 306, 280, 1),
    entry!(
        "DistalPhalanxOutlineCorrect",
        2,
        80,
        100,
        100,
        80,
        600,
        276,
        450,
        1
    ),
    entry!("Earthquakes", 2, 512, 100, 100, 512, 322, 139, 480, 1),
    entry!("ECG200", 2, 96, 100, 100, 96, 100, 100, 380, 1),
    entry!("ECG5000", 5, 140, 100, 200, 140, 500, 4500, 360, 1),
    entry!("ECGFiveDays", 2, 136, 23, 150, 136, 23, 861, 300, 2),
    entry!("ElectricDevices", 7, 96, 140, 140, 96, 8926, 7711, 520, 1),
    entry!("FaceAll", 14, 131, 140, 140, 131, 560, 1690, 400, 1),
    entry!("FaceFour", 4, 350, 24, 88, 350, 24, 88, 320, 2),
    entry!("FacesUCR", 14, 131, 140, 140, 131, 200, 2050, 400, 2),
    entry!("FordA", 2, 500, 100, 100, 500, 3601, 1320, 450, 2),
    entry!("GunPoint", 2, 150, 50, 150, 150, 50, 150, 280, 2),
    entry!("Ham", 2, 431, 100, 100, 431, 109, 105, 480, 1),
    entry!("HandOutlines", 2, 512, 100, 100, 2709, 1000, 370, 380, 2),
    entry!("Haptics", 5, 512, 100, 100, 1092, 155, 308, 550, 2),
    entry!("InlineSkate", 7, 512, 100, 140, 1882, 100, 550, 560, 2),
    entry!(
        "InsectWingbeatSound",
        11,
        256,
        110,
        110,
        256,
        220,
        1980,
        500,
        2
    ),
    entry!("ItalyPowerDemand", 2, 24, 67, 200, 24, 67, 1029, 300, 1),
    entry!(
        "LargeKitchenAppliances",
        3,
        512,
        90,
        90,
        720,
        375,
        375,
        430,
        2
    ),
    entry!("Mallat", 8, 512, 55, 160, 1024, 55, 2345, 300, 1),
    entry!("Meat", 3, 448, 60, 60, 448, 60, 60, 300, 1),
    entry!(
        "NonInvasiveFatalECGThorax1",
        42,
        512,
        126,
        126,
        750,
        1800,
        1965,
        380,
        2
    ),
    entry!("OSULeaf", 6, 427, 100, 100, 427, 200, 242, 450, 2),
    entry!("Phoneme", 39, 512, 117, 117, 1024, 214, 1896, 600, 2),
    entry!(
        "RefrigerationDevices",
        3,
        512,
        90,
        90,
        720,
        375,
        375,
        520,
        2
    ),
    entry!("ShapeletSim", 2, 500, 20, 180, 500, 20, 180, 400, 2),
    entry!("SonyAIBORobotSurface1", 2, 70, 20, 150, 70, 20, 601, 300, 2),
    entry!("SonyAIBORobotSurface2", 2, 65, 27, 150, 65, 27, 953, 320, 1),
    entry!("Strawberry", 2, 235, 100, 100, 235, 613, 370, 350, 1),
    entry!("Symbols", 6, 398, 25, 150, 398, 25, 995, 300, 2),
    entry!("SyntheticControl", 6, 60, 96, 96, 60, 300, 300, 200, 1),
    entry!("ToeSegmentation1", 2, 277, 40, 228, 277, 40, 228, 380, 2),
    entry!("TwoLeadECG", 2, 82, 23, 200, 82, 23, 1139, 300, 1),
    entry!("TwoPatterns", 4, 128, 100, 200, 128, 1000, 4000, 320, 1),
    entry!(
        "UWaveGestureLibraryY",
        8,
        315,
        112,
        160,
        315,
        896,
        3582,
        480,
        2
    ),
    entry!("Wafer", 2, 152, 100, 200, 152, 1000, 6164, 280, 1),
    entry!("WormsTwoClass", 2, 512, 80, 77, 900, 181, 77, 500, 2),
    entry!("Yoga", 2, 426, 100, 200, 426, 300, 3000, 460, 2),
    entry!("MoteStrain", 2, 84, 20, 200, 84, 20, 1252, 340, 2),
];

/// The 46 Table IV dataset names, in the paper's order (excludes the extra
/// `MoteStrain` entry carried for Tables II/VII).
pub fn table4_names() -> Vec<&'static str> {
    REGISTRY
        .iter()
        .map(|d| d.name)
        .filter(|&n| n != "MoteStrain")
        .collect()
}

/// Looks up a dataset's registry entry by name (case-sensitive, as in UCR).
pub fn info(name: &str) -> Result<&'static DatasetInfo> {
    REGISTRY
        .iter()
        .find(|d| d.name == name)
        .ok_or_else(|| Error::UnknownDataset(name.to_string()))
}

/// All registry names in Table IV order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|d| d.name).collect()
}

/// Iterates the registry entries in Table IV order — the canonical way
/// for grid harnesses to enumerate the full synthetic suite without
/// re-looking-up each name.
pub fn infos() -> impl Iterator<Item = &'static DatasetInfo> {
    REGISTRY.iter()
}

/// Deterministically synthesizes `(train, test)` for a registry dataset.
///
/// Instances are z-normalized, mirroring the preprocessing of the 2018
/// UCR archive (whose instances ship pre-normalized).
pub fn load(name: &str) -> Result<(Dataset, Dataset)> {
    let info = info(name)?;
    let (train, test) = SynthGenerator::new(info.spec()).generate()?;
    Ok((train.znormalized(), test.znormalized()))
}

/// Deterministically synthesizes the *conformance-grid* `(train, test)`
/// split for a registry dataset: [`load`] with the capped
/// [`DatasetInfo::grid_spec`] geometry. Bit-identical across repeated
/// calls, threads, and machines (pinned by `tests/registry_props.rs`).
pub fn load_grid(name: &str) -> Result<(Dataset, Dataset)> {
    let info = info(name)?;
    let (train, test) = SynthGenerator::new(info.grid_spec()).generate()?;
    Ok((train.znormalized(), test.znormalized()))
}

/// Deterministically synthesizes the *scaled* `(train, test)` split for a
/// registry dataset: [`load`] with the [`DatasetInfo::scaled_spec`]
/// geometry (`factor` × instances, `factor` × length). Bit-identical
/// across repeated calls, threads, and machines, like `load`/`load_grid`.
pub fn load_scaled(name: &str, factor: usize) -> Result<(Dataset, Dataset)> {
    let info = info(name)?;
    let (train, test) = SynthGenerator::new(info.scaled_spec(factor)).generate()?;
    Ok((train.znormalized(), test.znormalized()))
}

/// Loads the *real* UCR dataset from `dir` when the user has the archive on
/// disk, verifying its class count against the registry.
pub fn load_real(dir: impl AsRef<std::path::Path>, name: &str) -> Result<(Dataset, Dataset)> {
    let meta = info(name)?;
    let (train, test) = ucr::load_pair(dir, name)?;
    if train.num_classes() != meta.num_classes {
        return Err(Error::Invalid(format!(
            "{name}: archive file has {} classes, registry expects {}",
            train.num_classes(),
            meta.num_classes
        )));
    }
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_unique_entries_and_46_table4_names() {
        assert_eq!(REGISTRY.len(), 47);
        let mut names: Vec<_> = REGISTRY.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 47);
        assert_eq!(table4_names().len(), 46);
        assert!(!table4_names().contains(&"MoteStrain"));
    }

    #[test]
    fn scaling_is_honest() {
        for d in &REGISTRY {
            assert!(d.series_len <= d.orig_len, "{}", d.name);
            assert!(
                d.train_size <= d.orig_train.max(d.num_classes),
                "{}",
                d.name
            );
            assert!(d.series_len <= 512, "{}", d.name);
            assert!(d.num_classes >= 2, "{}", d.name);
        }
        assert!(info("HandOutlines").unwrap().scaled());
        assert!(!info("GunPoint").unwrap().scaled());
    }

    #[test]
    fn load_produces_expected_geometry() {
        let (train, test) = load("ItalyPowerDemand").unwrap();
        assert_eq!(train.num_classes(), 2);
        assert_eq!(train.uniform_length(), Some(24));
        assert_eq!(train.len(), 67);
        assert_eq!(test.len(), 200);
    }

    #[test]
    fn unknown_name_errors() {
        assert!(matches!(load("NoSuchSet"), Err(Error::UnknownDataset(_))));
        assert!(matches!(
            load_grid("NoSuchSet"),
            Err(Error::UnknownDataset(_))
        ));
        assert!(info("noSuchSet").is_err());
    }

    #[test]
    fn grid_spec_caps_geometry_and_keeps_identity() {
        for d in &REGISTRY {
            let g = d.grid_spec();
            assert!(g.series_len <= GRID_LEN_CAP, "{}", d.name);
            assert!(g.series_len <= d.series_len, "{}", d.name);
            assert!(g.train_size <= d.train_size, "{}", d.name);
            assert!(g.test_size <= d.test_size, "{}", d.name);
            // at least two instances per class survive the cap whenever
            // the full-size split had them
            if d.train_size >= 2 * d.num_classes {
                assert!(g.train_size >= 2 * d.num_classes, "{}", d.name);
            }
            // identity-preserving: classes, noise, and modes unchanged
            let full = d.spec();
            assert_eq!(g.num_classes, full.num_classes, "{}", d.name);
            assert_eq!(g.noise_std, full.noise_std, "{}", d.name);
            assert_eq!(g.modes, full.modes, "{}", d.name);
            assert_eq!(g.seed, full.seed, "{}", d.name);
        }
        // the caps actually bite on a large entry
        let beef = info("Beef").unwrap().grid_spec();
        assert_eq!(beef.series_len, GRID_LEN_CAP);
        // and leave small entries alone
        let italy = info("ItalyPowerDemand").unwrap().grid_spec();
        assert_eq!(italy.series_len, 24);
    }

    #[test]
    fn load_grid_produces_capped_geometry() {
        let (train, test) = load_grid("Beef").unwrap();
        assert_eq!(train.num_classes(), 5);
        assert_eq!(train.uniform_length(), Some(GRID_LEN_CAP));
        assert!(train.len() <= info("Beef").unwrap().train_size);
        assert!(!test.is_empty());
    }

    #[test]
    fn scaled_spec_multiplies_geometry_and_keeps_identity() {
        for d in &REGISTRY {
            for factor in SCALE_FACTORS {
                let s = d.scaled_spec(factor);
                assert_eq!(s.series_len, d.series_len * factor, "{}", d.name);
                assert_eq!(s.train_size, d.train_size * factor, "{}", d.name);
                assert_eq!(s.test_size, d.test_size * factor, "{}", d.name);
                // identity-preserving: classes, noise, modes, and the
                // name-derived seed all match the full-size spec
                let full = d.spec();
                assert_eq!(s.num_classes, full.num_classes, "{}", d.name);
                assert_eq!(s.noise_std, full.noise_std, "{}", d.name);
                assert_eq!(s.modes, full.modes, "{}", d.name);
                assert_eq!(s.seed, full.seed, "{}", d.name);
            }
        }
        // factor 1 (and a degenerate 0) reproduce the base geometry
        let base = info("ItalyPowerDemand").unwrap();
        assert_eq!(base.scaled_spec(1), base.spec());
        assert_eq!(base.scaled_spec(0), base.spec());
    }

    #[test]
    fn load_scaled_produces_scaled_geometry() {
        let (train, test) = load_scaled("ItalyPowerDemand", 10).unwrap();
        assert_eq!(train.num_classes(), 2);
        assert_eq!(train.uniform_length(), Some(240));
        assert_eq!(train.len(), 670);
        assert_eq!(test.len(), 2000);
        // deterministic across calls
        let (again, _) = load_scaled("ItalyPowerDemand", 10).unwrap();
        assert_eq!(train.series(7).values(), again.series(7).values());
        assert!(matches!(
            load_scaled("NoSuchSet", 10),
            Err(Error::UnknownDataset(_))
        ));
    }

    #[test]
    fn infos_iterates_the_whole_registry_in_order() {
        let from_iter: Vec<&str> = infos().map(|d| d.name).collect();
        assert_eq!(from_iter, names());
    }

    #[test]
    fn load_is_deterministic_per_name() {
        let (a, _) = load("GunPoint").unwrap();
        let (b, _) = load("GunPoint").unwrap();
        assert_eq!(a, b);
        let (c, _) = load("Coffee").unwrap();
        assert_ne!(a.series(0), c.series(0));
    }

    #[test]
    fn table2_and_table3_datasets_present() {
        for n in [
            "ArrowHead",
            "MoteStrain",
            "ShapeletSim",
            "ToeSegmentation1",
            "BeetleFly",
            "Coffee",
            "ECG200",
            "FordA",
            "GunPoint",
            "ItalyPowerDemand",
            "Meat",
            "Symbols",
        ] {
            assert!(info(n).is_ok(), "{n} missing");
        }
    }
}
