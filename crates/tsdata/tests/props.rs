//! Property-based tests of the data layer.

use ips_tsdata::{ucr, ClassConcat, Dataset, TimeSeries};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    // 1..8 instances of 1..24 values each, labels in 0..4
    prop::collection::vec((prop::collection::vec(-1e6f64..1e6, 1..24), 0u32..4), 1..8).prop_map(
        |rows| {
            let (series, labels): (Vec<_>, Vec<_>) = rows
                .into_iter()
                .map(|(v, l)| (TimeSeries::new(v), l))
                .unzip();
            Dataset::new(series, labels).expect("non-empty")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ucr_round_trip_preserves_data(d in dataset_strategy()) {
        let mut buf = Vec::new();
        ucr::write_tsv(&mut buf, &d).expect("write");
        let d2 = ucr::parse_ucr(&buf[..]).expect("parse");
        prop_assert_eq!(d.len(), d2.len());
        // labels are re-densified but order-preserving
        for i in 0..d.len() {
            for j in 0..d.len() {
                prop_assert_eq!(
                    d.label(i).cmp(&d.label(j)),
                    d2.label(i).cmp(&d2.label(j))
                );
            }
            for (a, b) in d.series(i).values().iter().zip(d2.series(i).values()) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn znormalize_produces_unit_moments(v in prop::collection::vec(-100.0f64..100.0, 2..64)) {
        let z = ips_tsdata::znormalize(&v);
        let n = z.len() as f64;
        let mu = z.iter().sum::<f64>() / n;
        let sd = (z.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n).sqrt();
        prop_assert!(mu.abs() < 1e-9);
        // constant inputs normalize to zeros (std 0), otherwise unit std
        prop_assert!(sd < 1e-9 || (sd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concat_coords_round_trip(d in dataset_strategy()) {
        for c in d.classes() {
            let cc = d.concat_class(c);
            prop_assert_eq!(
                cc.len(),
                d.class_indices(c).iter().map(|&i| d.series(i).len()).sum::<usize>()
            );
            for pos in 0..cc.len() {
                let (inst, off) = cc.to_instance_coords(pos);
                prop_assert_eq!(cc.values()[pos], d.series(inst).values()[off]);
                prop_assert_eq!(d.label(inst), c);
            }
        }
    }

    #[test]
    fn valid_starts_never_straddle(d in dataset_strategy(), len in 1usize..8) {
        let cc: ClassConcat = d.concat_class(d.classes()[0]);
        for s in cc.valid_starts(len) {
            prop_assert!(cc.within_one_instance(s, len));
            let (i1, _) = cc.to_instance_coords(s);
            let (i2, _) = cc.to_instance_coords(s + len - 1);
            prop_assert_eq!(i1, i2);
        }
    }
}
