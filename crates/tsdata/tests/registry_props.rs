//! Property tests pinning the determinism of `registry::load` and
//! `registry::load_grid`: the synthetic suite must be bit-identical
//! across repeated calls and across threads, because the conformance
//! grid (`bench_grid`, DESIGN.md §12) compares accuracies and counters
//! *exactly* between runs and machines — a single drifting bit in the
//! data would cascade into spurious gate failures.

use ips_tsdata::{registry, Dataset};
use proptest::prelude::*;

/// Bit-exact fingerprint of a dataset: per instance, the label plus the
/// raw IEEE-754 bits of every value (NaN-safe, unlike `==` on floats).
type Fingerprint = Vec<(u32, Vec<u64>)>;

fn fingerprint(d: &Dataset) -> Fingerprint {
    (0..d.len())
        .map(|i| {
            (
                d.label(i),
                d.series(i).values().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn split_fingerprint(pair: &(Dataset, Dataset)) -> (Fingerprint, Fingerprint) {
    (fingerprint(&pair.0), fingerprint(&pair.1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any registry dataset loads bit-identically on repeated calls,
    /// at full size and at grid size.
    #[test]
    fn load_is_bit_identical_across_repeated_calls(idx in 0usize..registry::names().len()) {
        let name = registry::names()[idx];
        let full_a = registry::load(name).expect("load");
        let full_b = registry::load(name).expect("load");
        prop_assert_eq!(split_fingerprint(&full_a), split_fingerprint(&full_b));

        let grid_a = registry::load_grid(name).expect("load_grid");
        let grid_b = registry::load_grid(name).expect("load_grid");
        prop_assert_eq!(split_fingerprint(&grid_a), split_fingerprint(&grid_b));
    }

    /// Grid specs are a deterministic function of the registry entry:
    /// same name, same spec, and the capped geometry still covers every
    /// class in the train split (so every method can fit on it).
    #[test]
    fn grid_split_covers_every_class(idx in 0usize..registry::names().len()) {
        let info = registry::infos().nth(idx).expect("registry entry");
        let (train, test) = registry::load_grid(info.name).expect("load_grid");
        prop_assert_eq!(train.classes().len(), info.num_classes as usize);
        prop_assert!(!test.is_empty());
        for c in train.classes() {
            prop_assert!(
                train.class_indices(c).len() >= 2,
                "{}: class {} has < 2 train instances",
                info.name,
                c
            );
        }
    }
}

/// The whole suite loads bit-identically from concurrent threads: the
/// generator owns all of its state (no globals, no thread-local RNG),
/// so parallel benches and tests see the same data as serial ones.
#[test]
fn load_grid_is_bit_identical_across_threads() {
    let reference: Vec<_> = registry::names()
        .iter()
        .map(|name| split_fingerprint(&registry::load_grid(name).expect("load_grid")))
        .collect();
    let reference = &reference;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    for (name, want) in registry::names().iter().zip(reference) {
                        let got = split_fingerprint(&registry::load_grid(name).expect("load_grid"));
                        assert_eq!(&got, want, "{name} drifted across threads");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("loader thread");
        }
    });
}

/// Full-size loads are thread-stable too (spot-checked on a few names;
/// the full suite at full size is covered by the proptest above).
#[test]
fn load_is_bit_identical_across_threads() {
    let names = registry::names();
    for name in [names[0], names[names.len() / 2], names[names.len() - 1]] {
        let want = split_fingerprint(&registry::load(name).expect("load"));
        let want = &want;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(move || split_fingerprint(&registry::load(name).expect("load")))
                })
                .collect();
            for h in handles {
                assert_eq!(&h.join().expect("loader thread"), want, "{name}");
            }
        });
    }
}
