//! End-to-end persistence and serving checks on a real fitted classifier
//! (satellite contract of DESIGN.md §14): save → load → transform is
//! bit-identical to the in-memory transform, corrupt files surface typed
//! errors, and the server's batch path matches single-request scoring.

use ips_core::{ChunkSize, IpsClassifier, IpsConfig, IpsError};
use ips_distance::DistCache;
use ips_obs::ObsError;
use ips_serve::{
    load_model, save_model, ClassifyRequest, IpsServer, ModelRegistry, ServableModel, ServeConfig,
};
use ips_tsdata::registry;

fn fitted() -> (IpsClassifier, ips_tsdata::Dataset) {
    let (train, test) = registry::load("ItalyPowerDemand").unwrap();
    let cfg = IpsConfig::default().with_sampling(5, 3).with_k(3);
    (IpsClassifier::fit(&train, cfg).unwrap(), test)
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ips_serve_it_{}_{tag}.json", std::process::id()))
}

#[test]
fn save_load_transform_is_bit_identical_to_in_memory() {
    let (model, test) = fitted();
    let servable = ServableModel::from_classifier("italy", &model).unwrap();
    let path = tmp("bitident");
    save_model(&servable, &path).unwrap();
    let loaded = load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded, servable);
    assert_eq!(loaded.transform(), model.transform());
    // Bit-identity of behavior, not just structure: the loaded transform
    // produces the exact embedding of the in-memory one on every test
    // series — both uncached and through the cache path serving uses.
    for series in test.all_series() {
        assert_eq!(
            loaded.transform().transform_one(series),
            model.transform().transform_one(series),
        );
        let mut c1 = DistCache::new();
        let mut c2 = DistCache::new();
        assert_eq!(
            loaded.transform().transform_one_with_cache(series, &mut c1),
            model.transform().transform_one_with_cache(series, &mut c2),
        );
    }
    // And the decision function agrees everywhere.
    for series in test.all_series() {
        let mut cache = DistCache::new();
        assert_eq!(loaded.predict(series, &mut cache), model.predict(series));
    }
}

#[test]
fn corrupt_model_files_yield_typed_errors_never_panics() {
    let (model, _) = fitted();
    let servable = ServableModel::from_classifier("italy", &model).unwrap();
    let text = servable.to_json_string();
    let path = tmp("corrupt");

    // Truncations at every-ish depth of the document. (`len - 2` clips
    // the closing brace; `len - 1` would only drop the trailing newline.)
    for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
        std::fs::write(&path, &text[..cut]).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(
            matches!(err, IpsError::Record(ObsError::Parse(_))),
            "cut={cut}: {err}"
        );
    }
    // Garbling that keeps the JSON valid but breaks the shape.
    std::fs::write(&path, text.replace("\"shapelets\"", "\"shapelettes\"")).unwrap();
    assert!(matches!(
        load_model(&path).unwrap_err(),
        IpsError::Record(ObsError::Malformed(_))
    ));
    // A future schema version is refused, not misread.
    std::fs::write(
        &path,
        text.replace("\"schema_version\": 1", "\"schema_version\": 999"),
    )
    .unwrap();
    assert!(matches!(
        load_model(&path).unwrap_err(),
        IpsError::Record(ObsError::SchemaVersion { found: 999, .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn served_batches_match_in_memory_classifier_predictions() {
    let (model, test) = fitted();
    let dir = std::env::temp_dir().join(format!("ips_serve_it_models_{}", std::process::id()));
    save_model(
        &ServableModel::from_classifier("italy", &model).unwrap(),
        dir.join("italy.json"),
    )
    .unwrap();
    let models = ModelRegistry::load_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let mut server = IpsServer::new(
        models,
        ServeConfig {
            num_threads: 4,
            max_batch: 16,
            chunk_size: ChunkSize::Auto,
        },
    )
    .unwrap();
    let mut responses = Vec::new();
    for (i, series) in test.all_series().iter().enumerate() {
        let request = ClassifyRequest {
            id: i as u64,
            model: "italy".into(),
            window: series.values().to_vec(),
        };
        if let Some(batch) = server.submit(request).unwrap() {
            responses.extend(batch);
        }
    }
    responses.extend(server.flush().unwrap());
    assert_eq!(responses.len(), test.len());
    // The serving path (loaded model, batch admission, cached distances)
    // reproduces the in-memory classifier's prediction on every instance.
    for (i, series) in test.all_series().iter().enumerate() {
        assert_eq!(responses[i].id, i as u64);
        assert_eq!(responses[i].label, model.predict(series), "instance {i}");
    }
}
