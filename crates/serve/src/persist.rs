//! Model persistence: a fitted classifier as a versioned JSON document.
//!
//! The wire format reuses the `ips-obs` codec (DESIGN.md §14): objects
//! have deterministically sorted keys, and finite `f64`s are written with
//! Rust's shortest-round-trip `Display`, so every shapelet value, SVM
//! weight, and standardization parameter survives save → load
//! *bit-identically* — a loaded model's transform and decision function
//! are exactly the in-memory ones. The document carries its own
//! [`MODEL_SCHEMA_VERSION`]; readers refuse any other version.
//!
//! Failure taxonomy (never a panic, whatever the bytes):
//! - unreadable/unwritable file → [`IpsError::Persist`] (I/O level),
//! - unparseable JSON → [`IpsError::Record`]([`ObsError::Parse`]),
//! - parseable but structurally wrong → [`IpsError::Record`]([`ObsError::Malformed`]),
//! - a version this reader does not speak →
//!   [`IpsError::Record`]([`ObsError::SchemaVersion`]).

use std::path::Path;

use ips_classify::{LinearSvm, Shapelet, ShapeletTransform};
use ips_core::{IpsClassifier, IpsError};
use ips_distance::DistCache;
use ips_obs::{Json, ObsError};
use ips_tsdata::TimeSeries;

/// The on-disk model schema version. Bump on any change to the serialized
/// layout and update the loader (plus committed fixtures) in the same PR.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// The `kind` discriminator stamped into every model document.
pub const MODEL_KIND: &str = "ips_model";

/// A fitted model reduced to what serving needs: the shapelet transform
/// and the SVM head, under a registry name. Discovery telemetry is
/// deliberately left behind — it belongs to the training run, not the
/// artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ServableModel {
    name: String,
    transform: ShapeletTransform,
    svm: LinearSvm,
}

impl ServableModel {
    /// Assembles a servable model, checking that the SVM head actually
    /// fits the transform's embedding (feature dimension = shapelet
    /// count) and that every parameter is representable in the wire
    /// format (finite).
    pub fn new(
        name: impl Into<String>,
        transform: ShapeletTransform,
        svm: LinearSvm,
    ) -> Result<Self, IpsError> {
        let name = name.into();
        if name.is_empty() {
            return Err(malformed("model name must be non-empty"));
        }
        if svm.means().len() != transform.dim() {
            return Err(malformed(format!(
                "SVM feature dimension {} does not match {} shapelets",
                svm.means().len(),
                transform.dim()
            )));
        }
        let model = Self {
            name,
            transform,
            svm,
        };
        model.check_finite()?;
        Ok(model)
    }

    /// Extracts the servable artifact from a fitted [`IpsClassifier`].
    pub fn from_classifier(
        name: impl Into<String>,
        model: &IpsClassifier,
    ) -> Result<Self, IpsError> {
        Self::new(name, model.transform().clone(), model.svm().clone())
    }

    /// The registry name this model serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shapelet transform.
    pub fn transform(&self) -> &ShapeletTransform {
        &self.transform
    }

    /// The SVM head.
    pub fn svm(&self) -> &LinearSvm {
        &self.svm
    }

    /// Length of the longest shapelet — the natural minimum window length
    /// for full-fidelity matches (shorter windows still score: the
    /// sliding distance handles them symmetrically).
    pub fn max_shapelet_len(&self) -> usize {
        self.transform
            .shapelets()
            .iter()
            .map(Shapelet::len)
            .max()
            .unwrap_or(0)
    }

    /// Classifies one window through a distance cache. This is *the*
    /// scoring path — batch and single-request serving both route here,
    /// which is what makes their results bit-identical.
    pub fn predict(&self, series: &TimeSeries, cache: &mut DistCache) -> u32 {
        self.svm
            .predict(&self.transform.transform_one_with_cache(series, cache))
    }

    /// Serializes as a JSON value under [`MODEL_SCHEMA_VERSION`].
    pub fn to_json(&self) -> Json {
        let shapelets: Vec<Json> = self
            .transform
            .shapelets()
            .iter()
            .map(|s| {
                let mut obj = Json::object();
                obj.insert("values", s.values.clone());
                obj.insert("class", s.class);
                obj.insert(
                    "source_instance",
                    if s.source_instance == usize::MAX {
                        Json::Null
                    } else {
                        Json::from(s.source_instance)
                    },
                );
                obj.insert("source_offset", s.source_offset);
                obj.insert("score", s.score);
                obj
            })
            .collect();
        let mut svm = Json::object();
        svm.insert("classes", self.svm.classes().to_vec());
        svm.insert(
            "weights",
            Json::Arr(self.svm.weights().iter().cloned().map(Json::from).collect()),
        );
        svm.insert("means", self.svm.means().to_vec());
        svm.insert("stds", self.svm.stds().to_vec());
        let mut obj = Json::object();
        obj.insert("schema_version", u64::from(MODEL_SCHEMA_VERSION));
        obj.insert("kind", MODEL_KIND);
        obj.insert("name", self.name.clone());
        obj.insert("znorm", self.transform.znorm());
        obj.insert("shapelets", Json::Arr(shapelets));
        obj.insert("svm", svm);
        obj
    }

    /// Serializes as a pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Rebuilds a model from a JSON value, validating every structural
    /// invariant before touching constructors that assert.
    pub fn from_json(value: &Json) -> Result<Self, IpsError> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or_else(|| malformed("missing `schema_version`"))? as u32;
        if version != MODEL_SCHEMA_VERSION {
            return Err(IpsError::Record(ObsError::SchemaVersion {
                found: version,
                expected: MODEL_SCHEMA_VERSION,
            }));
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing `kind` string"))?;
        if kind != MODEL_KIND {
            return Err(malformed(format!(
                "document kind {kind:?} is not {MODEL_KIND:?}"
            )));
        }
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing `name` string"))?
            .to_string();
        let znorm = value
            .get("znorm")
            .and_then(Json::as_bool)
            .ok_or_else(|| malformed("missing `znorm` boolean"))?;
        let shapelets = value
            .get("shapelets")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `shapelets` array"))?;
        if shapelets.is_empty() {
            return Err(malformed("`shapelets` must be non-empty"));
        }
        let shapelets = shapelets
            .iter()
            .enumerate()
            .map(|(i, s)| parse_shapelet(i, s))
            .collect::<Result<Vec<_>, _>>()?;
        let svm_obj = value
            .get("svm")
            .filter(|v| v.as_obj().is_some())
            .ok_or_else(|| malformed("missing `svm` object"))?;
        let classes = svm_obj
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `svm.classes` array"))?
            .iter()
            .map(|v| {
                v.as_num()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= f64::from(u32::MAX))
                    .map(|n| n as u32)
                    .ok_or_else(|| malformed("`svm.classes` entries must be u32"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let weights = svm_obj
            .get("weights")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `svm.weights` array"))?
            .iter()
            .map(|row| f64_array(row, "svm.weights row"))
            .collect::<Result<Vec<_>, _>>()?;
        let means = f64_array(
            svm_obj
                .get("means")
                .ok_or_else(|| malformed("missing `svm.means` array"))?,
            "svm.means",
        )?;
        let stds = f64_array(
            svm_obj
                .get("stds")
                .ok_or_else(|| malformed("missing `svm.stds` array"))?,
            "svm.stds",
        )?;
        let svm = LinearSvm::from_parts(classes, weights, means, stds)
            .map_err(|e| malformed(format!("svm: {e}")))?;
        // Shapelets were validated non-empty above, so the transform
        // constructor's assertions cannot fire.
        Self::new(name, ShapeletTransform::new(shapelets, znorm), svm)
    }

    /// Parses and rebuilds a model from a JSON document.
    pub fn from_json_str(text: &str) -> Result<Self, IpsError> {
        let value =
            Json::parse(text).map_err(|e| IpsError::Record(ObsError::Parse(e.to_string())))?;
        Self::from_json(&value)
    }

    fn check_finite(&self) -> Result<(), IpsError> {
        for (i, s) in self.transform.shapelets().iter().enumerate() {
            if !s.values.iter().all(|v| v.is_finite()) || !s.score.is_finite() {
                return Err(malformed(format!(
                    "shapelet {i} holds a non-finite value (unrepresentable in JSON)"
                )));
            }
        }
        // `LinearSvm::from_parts` already rejects non-finite parameters;
        // a *trained* SVM can still carry them if training diverged.
        let finite = |xs: &[f64]| xs.iter().all(|v| v.is_finite());
        if !self.svm.weights().iter().all(|w| finite(w))
            || !finite(self.svm.means())
            || !finite(self.svm.stds())
        {
            return Err(malformed(
                "SVM holds a non-finite parameter (unrepresentable in JSON)",
            ));
        }
        Ok(())
    }
}

fn malformed(message: impl Into<String>) -> IpsError {
    IpsError::Record(ObsError::Malformed(message.into()))
}

fn f64_array(value: &Json, what: &str) -> Result<Vec<f64>, IpsError> {
    value
        .as_arr()
        .ok_or_else(|| malformed(format!("`{what}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_num()
                .filter(|n| n.is_finite())
                .ok_or_else(|| malformed(format!("`{what}` entries must be finite numbers")))
        })
        .collect()
}

fn parse_shapelet(index: usize, value: &Json) -> Result<Shapelet, IpsError> {
    let values = f64_array(
        value
            .get("values")
            .ok_or_else(|| malformed(format!("shapelet {index}: missing `values`")))?,
        "shapelet.values",
    )?;
    if values.is_empty() {
        return Err(malformed(format!("shapelet {index}: empty `values`")));
    }
    let class = value
        .get("class")
        .and_then(Json::as_num)
        .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= f64::from(u32::MAX))
        .ok_or_else(|| malformed(format!("shapelet {index}: `class` must be u32")))?
        as u32;
    let source_instance = match value.get("source_instance") {
        None | Some(Json::Null) => usize::MAX,
        Some(v) => v
            .as_num()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or_else(|| malformed(format!("shapelet {index}: bad `source_instance`")))?
            as usize,
    };
    let source_offset = value
        .get("source_offset")
        .and_then(Json::as_num)
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .ok_or_else(|| malformed(format!("shapelet {index}: bad `source_offset`")))?
        as usize;
    let score = value
        .get("score")
        .and_then(Json::as_num)
        .filter(|n| n.is_finite())
        .ok_or_else(|| malformed(format!("shapelet {index}: `score` must be finite")))?;
    Ok(Shapelet {
        values,
        class,
        source_instance,
        source_offset,
        score,
    })
}

/// Writes a model document to `path` (creating parent directories).
pub fn save_model(model: &ServableModel, path: impl AsRef<Path>) -> Result<(), IpsError> {
    let path = path.as_ref();
    let persist = |e: std::io::Error| IpsError::Persist {
        path: path.display().to_string(),
        reason: e.to_string(),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(persist)?;
        }
    }
    std::fs::write(path, model.to_json_string()).map_err(persist)
}

/// Reads a model document from `path`. Corrupt bytes come back as typed
/// errors (see the module docs) — never a panic.
pub fn load_model(path: impl AsRef<Path>) -> Result<ServableModel, IpsError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| IpsError::Persist {
        path: path.display().to_string(),
        reason: e.to_string(),
    })?;
    ServableModel::from_json_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_classify::svm::SvmParams;

    fn tiny_model(name: &str) -> ServableModel {
        let shapelets = vec![
            Shapelet {
                values: vec![5.0, 6.5, 5.0],
                class: 0,
                source_instance: 3,
                source_offset: 2,
                score: 1.25,
            },
            Shapelet {
                values: vec![-5.0, -6.5, -5.0],
                class: 1,
                source_instance: usize::MAX,
                source_offset: 0,
                score: 0.1 + 0.2, // deliberately non-representable-in-decimal
            },
        ];
        let features = vec![
            vec![0.1, 9.0],
            vec![0.2, 8.5],
            vec![9.1, 0.3],
            vec![8.7, 0.2],
        ];
        let svm = LinearSvm::fit(&features, &[0, 0, 1, 1], SvmParams::default());
        ServableModel::new(name, ShapeletTransform::new(shapelets, false), svm).unwrap()
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ips_persist_{}_{tag}.json", std::process::id()))
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let model = tiny_model("tiny");
        let back = ServableModel::from_json_str(&model.to_json_string()).unwrap();
        assert_eq!(back, model);
        // And the derived behavior matches exactly, not just structurally.
        let probe = TimeSeries::new(vec![0.0, 5.0, 6.5, 5.0, 0.0, -1.0]);
        let mut c1 = DistCache::new();
        let mut c2 = DistCache::new();
        assert_eq!(
            model.transform().transform_one_with_cache(&probe, &mut c1),
            back.transform().transform_one_with_cache(&probe, &mut c2),
        );
        assert_eq!(
            model.predict(&probe, &mut c1),
            back.predict(&probe, &mut c2)
        );
    }

    #[test]
    fn save_load_round_trip() {
        let model = tiny_model("disk");
        let path = tmp("roundtrip");
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, model);
        assert_eq!(back.name(), "disk");
        assert_eq!(back.max_shapelet_len(), 3);
    }

    #[test]
    fn missing_file_is_a_persist_error() {
        let err = load_model(tmp("never_written")).unwrap_err();
        assert!(matches!(err, IpsError::Persist { .. }), "{err}");
        assert!(err.to_string().contains("never_written"));
    }

    #[test]
    fn rejects_other_schema_versions() {
        let mut doc = tiny_model("v").to_json();
        doc.insert("schema_version", 99u64);
        let err = ServableModel::from_json(&doc).unwrap_err();
        assert!(
            matches!(
                err,
                IpsError::Record(ObsError::SchemaVersion {
                    found: 99,
                    expected: MODEL_SCHEMA_VERSION
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_wrong_kind() {
        let mut doc = tiny_model("k").to_json();
        doc.insert("kind", "ips_fit");
        let err = ServableModel::from_json(&doc).unwrap_err();
        assert!(
            matches!(err, IpsError::Record(ObsError::Malformed(_))),
            "{err}"
        );
    }

    #[test]
    fn truncated_file_is_a_parse_error_not_a_panic() {
        let text = tiny_model("t").to_json_string();
        for cut in [1, text.len() / 3, text.len() - 2] {
            let err = ServableModel::from_json_str(&text[..cut]).unwrap_err();
            assert!(
                matches!(err, IpsError::Record(ObsError::Parse(_))),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn garbled_documents_are_malformed_not_a_panic() {
        let model = tiny_model("g");
        type Surgery = Box<dyn Fn(&mut Json)>;
        let surgeries: Vec<(&str, Surgery)> = vec![
            (
                "no shapelets",
                Box::new(|d| {
                    d.insert("shapelets", Json::Arr(vec![]));
                }),
            ),
            (
                "svm is a string",
                Box::new(|d| {
                    d.insert("svm", "nope");
                }),
            ),
            (
                "shapelet values hold null",
                Box::new(|d| {
                    d.insert(
                        "shapelets",
                        Json::Arr(vec![{
                            let mut s = Json::object();
                            s.insert("values", Json::Arr(vec![Json::Null]));
                            s.insert("class", 0u64);
                            s.insert("source_offset", 0u64);
                            s.insert("score", 0.0);
                            s
                        }]),
                    );
                }),
            ),
            (
                "negative class",
                Box::new(|d| {
                    let Some(Json::Arr(shapelets)) = d.get("shapelets").cloned() else {
                        unreachable!()
                    };
                    let mut s = shapelets[0].clone();
                    s.insert("class", Json::Num(-1.0));
                    d.insert("shapelets", Json::Arr(vec![s]));
                }),
            ),
        ];
        for (what, surgery) in surgeries {
            let mut doc = model.to_json();
            surgery(&mut doc);
            let err = ServableModel::from_json(&doc).unwrap_err();
            assert!(
                matches!(err, IpsError::Record(ObsError::Malformed(_))),
                "{what}: {err}"
            );
        }
    }

    #[test]
    fn svm_structural_corruption_is_malformed() {
        let mut doc = tiny_model("s").to_json();
        let mut svm = doc.get("svm").unwrap().clone();
        svm.insert("classes", vec![0u64]); // one class
        doc.insert("svm", svm);
        let err = ServableModel::from_json(&doc).unwrap_err();
        assert!(
            matches!(err, IpsError::Record(ObsError::Malformed(_))),
            "{err}"
        );
    }

    #[test]
    fn dimension_mismatch_is_rejected_at_assembly() {
        let model = tiny_model("d");
        let one_shapelet =
            ShapeletTransform::new(model.transform().shapelets()[..1].to_vec(), false);
        let err = ServableModel::new("d", one_shapelet, model.svm().clone()).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn non_finite_parameters_cannot_be_saved() {
        let model = tiny_model("nf");
        let mut shapelets = model.transform().shapelets().to_vec();
        shapelets[0].values[1] = f64::NAN;
        let err = ServableModel::new(
            "nf",
            ShapeletTransform::new(shapelets, false),
            model.svm().clone(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }
}
