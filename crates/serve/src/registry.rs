//! The model registry: N fitted models, addressable by name.
//!
//! A [`ModelRegistry`] is the immutable half of the server — built once
//! (from memory or a directory of model files), then shared read-only by
//! every worker. `BTreeMap` keeps [`names`](ModelRegistry::names) in a
//! deterministic sorted order, which the batch scheduler relies on for
//! its fixed class-major merge order.

use std::collections::BTreeMap;
use std::path::Path;

use ips_core::IpsError;

use crate::persist::{load_model, ServableModel};

/// A named collection of servable models.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, ServableModel>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a model under its embedded name. Duplicate names are a hard
    /// error: silently shadowing a deployed model is how stale artifacts
    /// keep serving.
    pub fn insert(&mut self, model: ServableModel) -> Result<(), IpsError> {
        let name = model.name().to_string();
        if self.models.contains_key(&name) {
            return Err(IpsError::InvalidConfig {
                field: "registry",
                message: format!("duplicate model name {name:?}"),
            });
        }
        self.models.insert(name, model);
        Ok(())
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<&ServableModel> {
        self.models.get(name)
    }

    /// Model names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Loads every `*.json` model file in `dir` (sorted by file name for
    /// deterministic error order). One corrupt file fails the whole load —
    /// a registry that silently dropped a model would misroute traffic.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, IpsError> {
        let dir = dir.as_ref();
        let persist = |e: std::io::Error| IpsError::Persist {
            path: dir.display().to_string(),
            reason: e.to_string(),
        };
        let mut paths = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(persist)? {
            let path = entry.map_err(persist)?.path();
            if path.extension().is_some_and(|e| e == "json") {
                paths.push(path);
            }
        }
        paths.sort();
        let mut registry = Self::new();
        for path in paths {
            registry.insert(load_model(&path)?)?;
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::save_model;
    use ips_classify::svm::SvmParams;
    use ips_classify::{LinearSvm, Shapelet, ShapeletTransform};

    fn model(name: &str, flip: f64) -> ServableModel {
        let shapelets = vec![
            Shapelet::new(vec![flip * 5.0, flip * 6.0], 0),
            Shapelet::new(vec![flip * -5.0, flip * -6.0], 1),
        ];
        let features = vec![
            vec![0.1, 9.0],
            vec![0.3, 8.0],
            vec![9.0, 0.2],
            vec![8.0, 0.4],
        ];
        let svm = LinearSvm::fit(&features, &[0, 0, 1, 1], SvmParams::default());
        ServableModel::new(name, ShapeletTransform::new(shapelets, false), svm).unwrap()
    }

    #[test]
    fn insert_get_and_sorted_names() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.insert(model("zeta", 1.0)).unwrap();
        reg.insert(model("alpha", -1.0)).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["alpha", "zeta"]);
        assert_eq!(reg.get("zeta").unwrap().name(), "zeta");
        assert!(reg.get("gamma").is_none());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut reg = ModelRegistry::new();
        reg.insert(model("a", 1.0)).unwrap();
        let err = reg.insert(model("a", -1.0)).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn load_dir_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("ips_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        save_model(&model("a", 1.0), dir.join("a.json")).unwrap();
        save_model(&model("b", -1.0), dir.join("b.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let reg = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(reg.names(), vec!["a", "b"]);

        std::fs::write(dir.join("c.json"), "{ truncated").unwrap();
        let err = ModelRegistry::load_dir(&dir).unwrap_err();
        assert!(matches!(err, IpsError::Record(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_on_missing_directory_is_a_persist_error() {
        let err = ModelRegistry::load_dir("/no/such/dir/anywhere").unwrap_err();
        assert!(matches!(err, IpsError::Persist { .. }), "{err}");
    }
}
