//! Model persistence and online classification serving (DESIGN.md §14).
//!
//! The production half of the IPS reproduction: a fitted classifier
//! becomes a versioned on-disk artifact ([`persist`]), a set of artifacts
//! becomes a named [`registry`], and a [`server`] scores concurrent
//! request traffic against it — batch admission, shard-per-model work
//! items on the engine's scheduler, and responses bit-identical to
//! single-request scoring at every thread count.
//!
//! ```
//! use ips_core::{IpsClassifier, IpsConfig};
//! use ips_serve::{ClassifyRequest, IpsServer, ModelRegistry, ServableModel, ServeConfig};
//! use ips_tsdata::registry;
//!
//! let (train, test) = registry::load("ItalyPowerDemand").unwrap();
//! let cfg = IpsConfig::default().with_sampling(4, 3).with_k(2);
//! let fitted = IpsClassifier::fit(&train, cfg).unwrap();
//!
//! // Persist → registry → server (here via the in-memory path; see
//! // `save_model`/`load_model` for the on-disk round trip).
//! let model = ServableModel::from_classifier("italy", &fitted).unwrap();
//! let mut models = ModelRegistry::new();
//! models.insert(model).unwrap();
//! let mut server = IpsServer::new(models, ServeConfig::default()).unwrap();
//!
//! let reply = server
//!     .classify_now(&ClassifyRequest {
//!         id: 7,
//!         model: "italy".into(),
//!         window: test.series(0).values().to_vec(),
//!     })
//!     .unwrap();
//! assert_eq!(reply.id, 7);
//! ```

pub mod persist;
pub mod registry;
pub mod server;

pub use persist::{load_model, save_model, ServableModel, MODEL_KIND, MODEL_SCHEMA_VERSION};
pub use registry::ModelRegistry;
pub use server::{ClassifyRequest, ClassifyResponse, IpsServer, ServeConfig};
