//! The online classification server: batch admission over a model
//! registry, scored by the engine's scheduler.
//!
//! Requests accumulate in an admission queue ([`IpsServer::submit`]) and
//! are scored as one batch ([`IpsServer::flush`]): the batch is grouped
//! by model (sorted name order), partitioned into [`TaskPartition`] work
//! items, and evaluated across the engine's [`WorkerPool`] — so
//! throughput scales with worker threads while the partition itself
//! stays a pure function of the workload and the chunk knob.
//!
//! **Determinism contract** (DESIGN.md §14): every scoring path routes
//! through [`ServableModel::predict`] on a [`DistCache`]. The cache is
//! purely memoizing — a hit returns exactly the value a fresh computation
//! would produce (content-keyed, deterministic kernel choice) — so which
//! requests happen to share a per-item cache cannot change any label.
//! Batch responses are therefore bit-identical to
//! [`IpsServer::classify_now`] on the same request, at every thread
//! count and every chunk size; responses always come back in submission
//! order.

use ips_core::{ChunkSize, ExecContext, IpsError, TaskPartition, WorkerPool};
use ips_distance::{CacheStats, DistCache};
use ips_obs::MetricsRegistry;
use ips_tsdata::TimeSeries;

use crate::persist::ServableModel;
use crate::registry::ModelRegistry;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads for batch scoring (`0` = machine parallelism).
    pub num_threads: usize,
    /// Queue depth that triggers an automatic flush on
    /// [`IpsServer::submit`].
    pub max_batch: usize,
    /// Work-item granularity for batch scoring (see
    /// [`ChunkSize`]); requests within one item share a distance cache.
    pub chunk_size: ChunkSize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            num_threads: 0,
            max_batch: 64,
            chunk_size: ChunkSize::Auto,
        }
    }
}

impl ServeConfig {
    /// Rejects unusable knob values with typed errors.
    pub fn validate(&self) -> Result<(), IpsError> {
        if self.max_batch == 0 {
            return Err(IpsError::InvalidConfig {
                field: "max_batch",
                message: "admission queue depth must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// One classification request: a window of raw values addressed to a
/// named model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyRequest {
    /// Caller-chosen correlation id, echoed back in the response.
    pub id: u64,
    /// Registry name of the model to score against.
    pub model: String,
    /// The raw window values.
    pub window: Vec<f64>,
}

/// The classification of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifyResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The model that scored it.
    pub model: String,
    /// The predicted class label.
    pub label: u32,
}

/// A long-lived classification server over an immutable model registry.
pub struct IpsServer {
    registry: ModelRegistry,
    config: ServeConfig,
    ctx: ExecContext<'static>,
    queue: Vec<ClassifyRequest>,
    cache_stats: CacheStats,
}

impl std::fmt::Debug for IpsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpsServer")
            .field("models", &self.registry.names())
            .field("config", &self.config)
            .field("pending", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl IpsServer {
    /// Builds a server; the registry is fixed for the server's lifetime.
    pub fn new(registry: ModelRegistry, config: ServeConfig) -> Result<Self, IpsError> {
        config.validate()?;
        Ok(Self {
            registry,
            config,
            ctx: ExecContext::new(WorkerPool::new(config.num_threads)),
            queue: Vec::new(),
            cache_stats: CacheStats::default(),
        })
    }

    /// The models this server routes to.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The server's knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.ctx.workers().threads()
    }

    /// Serving telemetry: `serve.*` counters and spans.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.ctx.metrics()
    }

    /// Cumulative distance-cache statistics across all flushed batches.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Requests currently queued and not yet flushed.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn lookup(&self, request: &ClassifyRequest) -> Result<&ServableModel, IpsError> {
        let model = self
            .registry
            .get(&request.model)
            .ok_or_else(|| IpsError::UnknownModel(request.model.clone()))?;
        if request.window.is_empty() {
            return Err(IpsError::InvalidData(ips_tsdata::Error::Invalid(format!(
                "request {}: empty window",
                request.id
            ))));
        }
        if let Some(pos) = request.window.iter().position(|v| !v.is_finite()) {
            return Err(IpsError::InvalidData(ips_tsdata::Error::Invalid(format!(
                "request {}: non-finite value at position {pos}",
                request.id
            ))));
        }
        Ok(model)
    }

    /// Admits one request. Invalid requests are rejected *here*, with a
    /// typed error, so the batch path only ever sees scoreable work. When
    /// admission fills the queue to `max_batch`, the batch is flushed
    /// inline and its responses returned.
    pub fn submit(
        &mut self,
        request: ClassifyRequest,
    ) -> Result<Option<Vec<ClassifyResponse>>, IpsError> {
        if let Err(e) = self.lookup(&request) {
            self.ctx.metrics().incr("serve.rejected", 1);
            return Err(e);
        }
        self.ctx.metrics().incr("serve.requests", 1);
        self.queue.push(request);
        if self.queue.len() >= self.config.max_batch {
            return Ok(Some(self.flush()?));
        }
        Ok(None)
    }

    /// Scores everything queued as one batch and returns the responses in
    /// submission order. A no-op on an empty queue.
    pub fn flush(&mut self) -> Result<Vec<ClassifyResponse>, IpsError> {
        let batch = std::mem::take(&mut self.queue);
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let span = self.ctx.metrics().time("serve.batch");
        // Group by model in sorted-name order, keeping submission order
        // within each group — the class-major partition below then gives a
        // fixed merge order regardless of threads.
        let mut groups: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
        for (i, request) in batch.iter().enumerate() {
            groups.entry(request.model.as_str()).or_default().push(i);
        }
        let models: Vec<&ServableModel> = groups
            .keys()
            .map(|name| {
                self.registry
                    .get(name)
                    .ok_or_else(|| IpsError::UnknownModel((*name).to_string()))
            })
            .collect::<Result<_, _>>()?;
        let indices: Vec<Vec<usize>> = groups.into_values().collect();
        let counts: Vec<usize> = indices.iter().map(Vec::len).collect();
        let partition = TaskPartition::new(&counts, self.config.chunk_size);
        let item_results = partition
            .try_run(&self.ctx.workers(), |item| {
                // One cache per work item: FFT plans and memo entries are
                // shared by the item's requests, never mutated across
                // threads.
                let mut cache = DistCache::new();
                let labels: Vec<(usize, u32)> = indices[item.class_idx][item.start..item.end]
                    .iter()
                    .map(|&qi| {
                        let series = TimeSeries::new(batch[qi].window.clone());
                        (qi, models[item.class_idx].predict(&series, &mut cache))
                    })
                    .collect();
                (labels, cache.stats())
            })
            .map_err(|reason| IpsError::StageFailed {
                stage: "serve.batch",
                reason,
            })?;
        let mut labels = vec![0u32; batch.len()];
        for (item_labels, stats) in item_results {
            self.cache_stats.merge(&stats);
            for (qi, label) in item_labels {
                labels[qi] = label;
            }
        }
        let responses: Vec<ClassifyResponse> = batch
            .into_iter()
            .zip(labels)
            .map(|(request, label)| ClassifyResponse {
                id: request.id,
                model: request.model,
                label,
            })
            .collect();
        let metrics = self.ctx.metrics();
        metrics.incr("serve.batches", 1);
        metrics.incr("serve.responses", responses.len() as u64);
        metrics.incr("serve.sched_items", partition.len() as u64);
        drop(span);
        Ok(responses)
    }

    /// Scores one request immediately, bypassing the queue — the
    /// reference path batch results are bit-identical to.
    pub fn classify_now(&self, request: &ClassifyRequest) -> Result<ClassifyResponse, IpsError> {
        let model = self.lookup(request)?;
        let _span = self.ctx.metrics().time("serve.single");
        let mut cache = DistCache::new();
        let label = model.predict(&TimeSeries::new(request.window.clone()), &mut cache);
        self.ctx.metrics().incr("serve.singles", 1);
        Ok(ClassifyResponse {
            id: request.id,
            model: request.model.clone(),
            label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_classify::svm::SvmParams;
    use ips_classify::{LinearSvm, Shapelet, ShapeletTransform};

    fn model(name: &str, flip: f64) -> ServableModel {
        let shapelets = vec![
            Shapelet::new(vec![flip * 5.0, flip * 6.0, flip * 5.0], 0),
            Shapelet::new(vec![flip * -5.0, flip * -6.0, flip * -5.0], 1),
        ];
        // Features are (distance to class-0 shapelet, distance to class-1
        // shapelet): near-zero first coordinate ⇒ class 0.
        let features = vec![
            vec![0.1, 9.0],
            vec![0.3, 8.0],
            vec![9.0, 0.2],
            vec![8.0, 0.4],
        ];
        let svm = LinearSvm::fit(&features, &[0, 0, 1, 1], SvmParams::default());
        ServableModel::new(name, ShapeletTransform::new(shapelets, false), svm).unwrap()
    }

    fn two_model_registry() -> ModelRegistry {
        let mut registry = ModelRegistry::new();
        registry.insert(model("up", 1.0)).unwrap();
        registry.insert(model("down", -1.0)).unwrap();
        registry
    }

    /// A deterministic mixed request stream: windows embed one of the two
    /// planted patterns at varying offsets, alternating models.
    fn stream(n: usize) -> Vec<ClassifyRequest> {
        (0..n)
            .map(|i| {
                let mut window = vec![0.25 * (i % 7) as f64; 16];
                let at = i % 12;
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                let flip = if i % 3 == 0 { 1.0 } else { -1.0 };
                for (j, v) in [5.0, 6.0, 5.0].iter().enumerate() {
                    window[at + j] = sign * flip * v;
                }
                ClassifyRequest {
                    id: i as u64,
                    model: if i % 3 == 0 {
                        "up".into()
                    } else {
                        "down".into()
                    },
                    window,
                }
            })
            .collect()
    }

    fn serve_all(config: ServeConfig, requests: &[ClassifyRequest]) -> Vec<ClassifyResponse> {
        let mut server = IpsServer::new(two_model_registry(), config).unwrap();
        let mut responses = Vec::new();
        for request in requests {
            if let Some(batch) = server.submit(request.clone()).unwrap() {
                responses.extend(batch);
            }
        }
        responses.extend(server.flush().unwrap());
        responses
    }

    #[test]
    fn batch_results_are_bit_identical_to_single_request_scoring() {
        let requests = stream(40);
        let config = ServeConfig {
            num_threads: 4,
            max_batch: 16,
            chunk_size: ChunkSize::Auto,
        };
        let responses = serve_all(config, &requests);
        assert_eq!(responses.len(), requests.len());
        let reference = IpsServer::new(two_model_registry(), ServeConfig::default()).unwrap();
        for (request, response) in requests.iter().zip(&responses) {
            assert_eq!(response.id, request.id, "submission order preserved");
            assert_eq!(&reference.classify_now(request).unwrap(), response);
        }
    }

    #[test]
    fn responses_are_invariant_across_threads_and_chunking() {
        let requests = stream(30);
        let baseline = serve_all(
            ServeConfig {
                num_threads: 1,
                max_batch: 10,
                chunk_size: ChunkSize::Fixed(1),
            },
            &requests,
        );
        for threads in [2, 4] {
            for chunk in [ChunkSize::Auto, ChunkSize::Fixed(3), ChunkSize::Fixed(64)] {
                let got = serve_all(
                    ServeConfig {
                        num_threads: threads,
                        max_batch: 10,
                        chunk_size: chunk,
                    },
                    &requests,
                );
                assert_eq!(got, baseline, "threads={threads} chunk={chunk:?}");
            }
        }
    }

    #[test]
    fn submit_flushes_exactly_at_max_batch() {
        let requests = stream(7);
        let mut server = IpsServer::new(
            two_model_registry(),
            ServeConfig {
                max_batch: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut flushed = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            match server.submit(request.clone()).unwrap() {
                Some(batch) => {
                    assert_eq!(batch.len(), 3, "request {i}");
                    assert_eq!(server.pending(), 0);
                    flushed.extend(batch);
                }
                None => assert!(server.pending() <= 2),
            }
        }
        assert_eq!(server.pending(), 1);
        flushed.extend(server.flush().unwrap());
        assert_eq!(flushed.len(), 7);
        let m = server.metrics().snapshot();
        assert_eq!(m.counters["serve.requests"], 7);
        assert_eq!(m.counters["serve.responses"], 7);
        assert_eq!(m.counters["serve.batches"], 3);
        assert!(server.cache_stats().requests() > 0);
    }

    #[test]
    fn invalid_requests_are_rejected_with_typed_errors() {
        let mut server = IpsServer::new(two_model_registry(), ServeConfig::default()).unwrap();
        let unknown = ClassifyRequest {
            id: 1,
            model: "sideways".into(),
            window: vec![1.0; 8],
        };
        assert!(matches!(
            server.submit(unknown.clone()).unwrap_err(),
            IpsError::UnknownModel(name) if name == "sideways"
        ));
        assert!(matches!(
            server.classify_now(&unknown).unwrap_err(),
            IpsError::UnknownModel(_)
        ));
        let empty = ClassifyRequest {
            id: 2,
            model: "up".into(),
            window: vec![],
        };
        assert!(matches!(
            server.submit(empty).unwrap_err(),
            IpsError::InvalidData(_)
        ));
        let nan = ClassifyRequest {
            id: 3,
            model: "up".into(),
            window: vec![1.0, f64::NAN],
        };
        let err = server.submit(nan).unwrap_err();
        assert!(err.to_string().contains("position 1"), "{err}");
        // Nothing slipped into the queue; rejections were counted.
        assert_eq!(server.pending(), 0);
        assert_eq!(server.metrics().snapshot().counters["serve.rejected"], 3);
        assert!(server.flush().unwrap().is_empty());
    }

    #[test]
    fn windows_shorter_than_shapelets_still_score() {
        let server = IpsServer::new(two_model_registry(), ServeConfig::default()).unwrap();
        let short = ClassifyRequest {
            id: 9,
            model: "up".into(),
            window: vec![5.0, 6.0], // shorter than every shapelet
        };
        let response = server.classify_now(&short).unwrap();
        assert_eq!(response.id, 9);
    }

    #[test]
    fn zero_max_batch_is_an_invalid_config() {
        let err = IpsServer::new(
            ModelRegistry::new(),
            ServeConfig {
                max_batch: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IpsError::InvalidConfig {
                field: "max_batch",
                ..
            }
        ));
    }
}
