//! Property-based tests of the profile invariants.

use ips_profile::{InstanceProfile, MatrixProfile, Metric};
use ips_tsdata::ClassConcat;
use proptest::prelude::*;

fn series(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_equals_brute(s in series(20..80), w in 3usize..10) {
        prop_assume!(s.len() >= w + 4);
        for metric in [Metric::MeanSquared, Metric::ZNormEuclidean] {
            let fast = MatrixProfile::self_join_excl(&s, w, metric, w / 2);
            let slow = MatrixProfile::self_join_brute(&s, w, metric, w / 2);
            for i in 0..fast.len() {
                let (a, b) = (fast.values()[i], slow.values()[i]);
                if a.is_finite() || b.is_finite() {
                    prop_assert!((a - b).abs() < 1e-5, "{:?} at {}: {} vs {}", metric, i, a, b);
                }
            }
        }
    }

    #[test]
    fn ab_join_is_elementwise_min_over_queries(a in series(12..40), b in series(12..40), w in 3usize..8) {
        prop_assume!(a.len() >= w && b.len() >= w);
        let mp = MatrixProfile::ab_join(&a, &b, w, Metric::MeanSquared);
        for (i, &v) in mp.values().iter().enumerate() {
            let naive = ips_distance::dist_profile(&a[i..i + w], &b)
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            prop_assert!((v - naive).abs() < 1e-6);
        }
    }

    #[test]
    fn profile_values_nonnegative_and_nn_outside_exclusion(s in series(24..64), w in 3usize..8) {
        let excl = w / 2;
        let mp = MatrixProfile::self_join_excl(&s, w, Metric::MeanSquared, excl);
        for (i, (&v, &nn)) in mp.values().iter().zip(mp.nn_index()).enumerate() {
            if v.is_finite() {
                prop_assert!(v >= 0.0);
                prop_assert!(i.abs_diff(nn) > excl);
            }
        }
    }

    #[test]
    fn instance_profile_dominates_matrix_profile(
        instances in prop::collection::vec(series(12..24), 2..5),
        w in 3usize..6,
    ) {
        let cc = ClassConcat::from_instances(
            instances.iter().enumerate().map(|(i, v)| (i, v.as_slice())),
        );
        let ip = InstanceProfile::compute(&cc, w, Metric::MeanSquared);
        let mp = MatrixProfile::self_join_excl(cc.values(), w, Metric::MeanSquared, 0);
        // excluding same-instance matches can only grow the NN distance
        for e in ip.entries() {
            let m = mp.values()[e.start];
            if e.value.is_finite() {
                prop_assert!(m <= e.value + 1e-9, "at {}: {} > {}", e.start, m, e.value);
            }
        }
    }
}
