//! Streaming (incremental) matrix profile — STAMPI-style.
//!
//! Maintains a self-join matrix profile under point appends: each new
//! point creates one new window whose distance profile updates both the
//! new entry and all existing entries, in O(n) per append (amortized;
//! identical results to recomputing from scratch, which the tests verify).
//! This is the substrate for online monitoring use cases (see the
//! `streaming_monitor` example).

use ips_distance::rolling::RollingStats;
use ips_distance::znorm_dist_from_dot;

use crate::matrix::Metric;

/// An incrementally maintained self-join matrix profile.
#[derive(Debug, Clone)]
pub struct StreamingProfile {
    series: Vec<f64>,
    values: Vec<f64>,
    nn_index: Vec<usize>,
    window: usize,
    excl: usize,
    metric: Metric,
}

impl StreamingProfile {
    /// Creates an empty streaming profile for the given window length and
    /// the default exclusion zone `window / 2`.
    ///
    /// # Panics
    /// Panics when `window == 0`.
    pub fn new(window: usize, metric: Metric) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            series: Vec::new(),
            values: Vec::new(),
            nn_index: Vec::new(),
            window,
            excl: window / 2,
            metric,
        }
    }

    /// Appends a batch of points.
    pub fn extend(&mut self, points: &[f64]) {
        for &p in points {
            self.push(p);
        }
    }

    /// Appends one point, updating the profile incrementally.
    pub fn push(&mut self, point: f64) {
        self.series.push(point);
        let n = self.series.len();
        if n < self.window {
            return;
        }
        // the new window starts here
        let j = n - self.window;
        let mut best = f64::INFINITY;
        let mut best_nn = 0usize;
        // distance of the new window to every existing window
        let stats = RollingStats::new(&self.series, self.window);
        let new_win = &self.series[j..j + self.window];
        for i in 0..self.values.len() {
            if i.abs_diff(j) <= self.excl {
                continue;
            }
            let d = match self.metric {
                Metric::MeanSquared => {
                    let w = &self.series[i..i + self.window];
                    new_win
                        .iter()
                        .zip(w)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        / self.window as f64
                }
                Metric::ZNormEuclidean => {
                    let w = &self.series[i..i + self.window];
                    let dot: f64 = new_win.iter().zip(w).map(|(a, b)| a * b).sum();
                    znorm_dist_from_dot(
                        dot,
                        self.window,
                        stats.mean(j),
                        stats.std(j),
                        stats.mean(i),
                        stats.std(i),
                    )
                }
            };
            // the new window can improve existing entries …
            if d < self.values[i] {
                self.values[i] = d;
                self.nn_index[i] = j;
            }
            // … and they compete to be its nearest neighbor
            if d < best {
                best = d;
                best_nn = i;
            }
        }
        self.values.push(best);
        self.nn_index.push(best_nn);
    }

    /// Current profile values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Current nearest-neighbor indices.
    pub fn nn_index(&self) -> &[usize] {
        &self.nn_index
    }

    /// The observed series.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Number of profile entries (windows seen so far).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True before the first full window arrives.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current discord: `(window_start, value)` of the largest finite
    /// entry — the live anomaly indicator.
    pub fn discord(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixProfile;

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                (0.5 + 0.3 * (x * 0.017).sin()) * (x * 0.41).sin() + 0.002 * x
            })
            .collect()
    }

    #[test]
    fn streaming_matches_batch_computation() {
        let s = wave(150);
        for metric in [Metric::MeanSquared, Metric::ZNormEuclidean] {
            let mut sp = StreamingProfile::new(12, metric);
            sp.extend(&s);
            let batch = MatrixProfile::self_join(&s, 12, metric);
            assert_eq!(sp.len(), batch.len());
            for i in 0..sp.len() {
                let (a, b) = (sp.values()[i], batch.values()[i]);
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-6, "{metric:?} at {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn incremental_appends_agree_with_one_shot() {
        let s = wave(100);
        let mut one = StreamingProfile::new(10, Metric::ZNormEuclidean);
        one.extend(&s);
        let mut piecewise = StreamingProfile::new(10, Metric::ZNormEuclidean);
        for chunk in s.chunks(7) {
            piecewise.extend(chunk);
        }
        assert_eq!(one.values(), piecewise.values());
        assert_eq!(one.nn_index(), piecewise.nn_index());
    }

    #[test]
    fn discord_appears_when_anomaly_streams_in() {
        let mut sp = StreamingProfile::new(8, Metric::ZNormEuclidean);
        sp.extend(&wave(120));
        let before = sp.discord().expect("some discord").1;
        // stream in an anomaly
        let spike: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 9.0 } else { -9.0 })
            .collect();
        sp.extend(&spike);
        sp.extend(&wave(40));
        let (pos, after) = sp.discord().expect("discord");
        assert!(
            after > before,
            "discord value should grow: {before} -> {after}"
        );
        assert!((112..=128).contains(&pos), "discord at {pos}");
    }

    #[test]
    fn short_streams_are_empty() {
        let mut sp = StreamingProfile::new(16, Metric::MeanSquared);
        sp.extend(&[1.0, 2.0, 3.0]);
        assert!(sp.is_empty());
        assert!(sp.discord().is_none());
        assert_eq!(sp.series().len(), 3);
    }
}
