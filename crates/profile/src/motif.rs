//! Top-k motif and discord extraction from a computed matrix profile.
//!
//! Extraction applies an exclusion zone around each selected occurrence so
//! the top-k are *distinct* regions rather than the same region shifted by
//! one — the paper's issue 2.2 ("similar subsequences as shapelets") is
//! exactly what happens without this.

use crate::matrix::MatrixProfile;

/// A selected motif or discord occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occurrence {
    /// Start offset of the window.
    pub start: usize,
    /// Profile value at that window.
    pub value: f64,
    /// Nearest-neighbor offset recorded by the profile.
    pub nn_start: usize,
}

/// Top-`k` motifs (smallest profile values), suppressing any window within
/// `excl` positions of an already-selected one.
pub fn top_motifs(mp: &MatrixProfile, k: usize, excl: usize) -> Vec<Occurrence> {
    select(mp, k, excl, false)
}

/// Top-`k` discords (largest finite profile values), with the same
/// suppression rule.
pub fn top_discords(mp: &MatrixProfile, k: usize, excl: usize) -> Vec<Occurrence> {
    select(mp, k, excl, true)
}

fn select(mp: &MatrixProfile, k: usize, excl: usize, largest: bool) -> Vec<Occurrence> {
    let mut order: Vec<usize> = (0..mp.len())
        .filter(|&i| mp.values()[i].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        let (x, y) = (mp.values()[a], mp.values()[b]);
        if largest {
            y.partial_cmp(&x).expect("finite")
        } else {
            x.partial_cmp(&y).expect("finite")
        }
    });
    let mut picked: Vec<Occurrence> = Vec::with_capacity(k);
    for i in order {
        if picked.len() == k {
            break;
        }
        if picked.iter().any(|p| p.start.abs_diff(i) <= excl) {
            continue;
        }
        picked.push(Occurrence {
            start: i,
            value: mp.values()[i],
            nn_start: mp.nn_index()[i],
        });
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{MatrixProfile, Metric};

    fn series_with_pairs() -> Vec<f64> {
        // Background plus two distinct motif pairs and one discord.
        let mut s: Vec<f64> = (0..220)
            .map(|i| {
                let x = i as f64;
                (0.4 + 0.25 * (x * 0.0191).sin()) * (x * 0.53).sin() + 0.002 * x
            })
            .collect();
        let pat_a = [4.0, 5.0, 4.5, 5.5, 4.0, 5.0];
        let pat_b = [-4.0, -5.0, -4.5, -5.5, -4.0, -5.0];
        s[10..16].copy_from_slice(&pat_a);
        s[60..66].copy_from_slice(&pat_a);
        s[110..116].copy_from_slice(&pat_b);
        s[160..166].copy_from_slice(&pat_b);
        for (k, v) in s[190..196].iter_mut().enumerate() {
            *v = if k % 2 == 0 { 30.0 } else { -30.0 };
        }
        s
    }

    #[test]
    fn top_motifs_finds_both_planted_pairs() {
        let s = series_with_pairs();
        let mp = MatrixProfile::self_join(&s, 6, Metric::MeanSquared);
        let motifs = top_motifs(&mp, 4, 6);
        assert_eq!(motifs.len(), 4);
        let starts: Vec<usize> = motifs.iter().map(|m| m.start).collect();
        for target in [10usize, 60, 110, 160] {
            assert!(
                starts.iter().any(|&s| s.abs_diff(target) <= 1),
                "missing motif near {target}: {starts:?}"
            );
        }
    }

    #[test]
    fn suppression_prevents_adjacent_picks() {
        let s = series_with_pairs();
        let mp = MatrixProfile::self_join(&s, 6, Metric::MeanSquared);
        let motifs = top_motifs(&mp, 10, 6);
        for (i, a) in motifs.iter().enumerate() {
            for b in &motifs[i + 1..] {
                assert!(a.start.abs_diff(b.start) > 6);
            }
        }
    }

    #[test]
    fn top_discord_is_the_spike() {
        let s = series_with_pairs();
        let mp = MatrixProfile::self_join(&s, 6, Metric::MeanSquared);
        let d = top_discords(&mp, 1, 6);
        assert_eq!(d.len(), 1);
        assert!(
            (184..=196).contains(&d[0].start),
            "discord at {}",
            d[0].start
        );
    }

    #[test]
    fn requesting_more_than_available_truncates() {
        let s: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mp = MatrixProfile::self_join(&s, 4, Metric::MeanSquared);
        let motifs = top_motifs(&mp, 100, 8);
        assert!(motifs.len() < 100);
        assert!(!motifs.is_empty());
    }

    #[test]
    fn empty_profile_yields_no_occurrences() {
        let mp = MatrixProfile::self_join(&[1.0], 4, Metric::MeanSquared);
        assert!(top_motifs(&mp, 3, 2).is_empty());
        assert!(top_discords(&mp, 3, 2).is_empty());
    }

    #[test]
    fn motif_values_are_nondecreasing() {
        let s = series_with_pairs();
        let mp = MatrixProfile::self_join(&s, 6, Metric::ZNormEuclidean);
        let motifs = top_motifs(&mp, 5, 6);
        for w in motifs.windows(2) {
            assert!(w[0].value <= w[1].value + 1e-12);
        }
        let discords = top_discords(&mp, 5, 6);
        for w in discords.windows(2) {
            assert!(w[0].value >= w[1].value - 1e-12);
        }
    }
}
