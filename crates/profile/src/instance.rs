//! The paper's instance profile (Definitions 8–9).
//!
//! Given a concatenation of sampled class instances, the instance profile
//! annotates every *valid* subsequence (one that does not straddle an
//! instance boundary) with its nearest-neighbor distance among subsequences
//! of **other** instances in the sample (`m' != m` in Definition 9). This
//! fixes the MP baseline's habit of matching a subsequence against its own
//! instance, and — because the concatenation is a *sample* rather than the
//! whole class — yields diverse candidates across repeated draws.

use ips_tsdata::ClassConcat;

use crate::matrix::{MatrixProfile, Metric};

/// One annotated subsequence of the instance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileEntry {
    /// Start offset in the concatenated series.
    pub start: usize,
    /// Nearest-neighbor distance among other-instance subsequences.
    pub value: f64,
    /// Start offset (in the concatenation) of that nearest neighbor.
    pub nn_start: usize,
}

/// The instance profile of one sampled concatenation at one window length.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceProfile {
    entries: Vec<ProfileEntry>,
    window: usize,
    metric: Metric,
}

impl InstanceProfile {
    /// Computes the instance profile of `concat` for window length
    /// `window`.
    ///
    /// Implementation: one AB-join per ordered instance pair `(a, b)`,
    /// `a != b`, using the incremental kernels of
    /// [`MatrixProfile::ab_join`]; the per-subsequence minimum over all `b`
    /// is the `ip_i` of Definition 9. Subsequences straddling a boundary
    /// never appear because joins operate on per-instance slices.
    pub fn compute(concat: &ClassConcat, window: usize, metric: Metric) -> Self {
        let mut entries: Vec<ProfileEntry> = Vec::new();
        let k = concat.num_instances();
        let values = concat.values();
        for ai in 0..k {
            let (a_start, a_len, _) = concat.segment(ai);
            if a_len < window || window == 0 {
                continue;
            }
            let a_slice = &values[a_start..a_start + a_len];
            let n_a = a_len - window + 1;
            let mut best = vec![f64::INFINITY; n_a];
            let mut best_nn = vec![0usize; n_a];
            for bi in 0..k {
                if bi == ai {
                    continue;
                }
                let (b_start, b_len, _) = concat.segment(bi);
                if b_len < window {
                    continue;
                }
                let b_slice = &values[b_start..b_start + b_len];
                let mp = MatrixProfile::ab_join(a_slice, b_slice, window, metric);
                for (i, (&v, &nn)) in mp.values().iter().zip(mp.nn_index()).enumerate() {
                    if v < best[i] {
                        best[i] = v;
                        best_nn[i] = b_start + nn;
                    }
                }
            }
            entries.extend((0..n_a).map(|i| ProfileEntry {
                start: a_start + i,
                value: best[i],
                nn_start: best_nn[i],
            }));
        }
        entries.sort_by_key(|e| e.start);
        Self {
            entries,
            window,
            metric,
        }
    }

    /// All annotated subsequences in start order.
    #[inline]
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Window length `L`.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Metric used.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of annotated subsequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no instance was long enough for the window.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The motif: the entry with the minimum profile value (`min(IP)` of
    /// Algorithm 1, line 7). `None` when empty or all-infinite.
    pub fn motif(&self) -> Option<ProfileEntry> {
        self.entries
            .iter()
            .filter(|e| e.value.is_finite())
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("finite"))
            .copied()
    }

    /// The discord: the entry with the maximum finite profile value
    /// (`max(IP)` of Algorithm 1, line 8).
    pub fn discord(&self) -> Option<ProfileEntry> {
        self.entries
            .iter()
            .filter(|e| e.value.is_finite())
            .max_by(|a, b| a.value.partial_cmp(&b.value).expect("finite"))
            .copied()
    }

    /// Profile values only, in start order (for plotting / Figure-style
    /// output).
    pub fn values(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ips_tsdata::{ClassConcat, Dataset, TimeSeries};

    fn concat_of(seqs: &[Vec<f64>]) -> ClassConcat {
        ClassConcat::from_instances(seqs.iter().enumerate().map(|(i, v)| (i, v.as_slice())))
    }

    #[test]
    fn motif_is_the_shared_pattern() {
        // Pattern present in instances 0 and 2, absent in 1.
        let pat = vec![5.0, 6.0, 5.5, 6.5, 5.0];
        let mut a = vec![0.0; 30];
        a[8..13].copy_from_slice(&pat);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() * 0.3).collect();
        let mut c = vec![0.1; 30];
        c[20..25].copy_from_slice(&pat);
        let concat = concat_of(&[a, b, c]);
        let ip = InstanceProfile::compute(&concat, 5, Metric::MeanSquared);
        let motif = ip.motif().unwrap();
        assert!(motif.value < 1e-10);
        assert!(motif.start == 8 || motif.start == 30 + 30 + 20);
        // the nearest neighbor is the twin occurrence in the other instance
        let (inst_m, _) = concat.to_instance_coords(motif.start);
        let (inst_nn, _) = concat.to_instance_coords(motif.nn_start);
        assert_ne!(inst_m, inst_nn);
    }

    #[test]
    fn same_instance_matches_are_excluded() {
        // A pattern repeated twice *within* instance 0 but absent elsewhere
        // must NOT produce a zero profile value (the MP baseline would).
        let pat = vec![9.0, 8.0, 9.5, 8.5];
        let mut a = vec![0.0; 30];
        a[2..6].copy_from_slice(&pat);
        a[20..24].copy_from_slice(&pat);
        let b = vec![0.0; 30];
        let concat = concat_of(&[a, b]);
        let ip = InstanceProfile::compute(&concat, 4, Metric::MeanSquared);
        let at2 = ip.entries().iter().find(|e| e.start == 2).unwrap();
        assert!(
            at2.value > 1.0,
            "same-instance twin must not count: {}",
            at2.value
        );
    }

    #[test]
    fn no_straddling_subsequences() {
        let concat = concat_of(&[vec![1.0; 10], vec![2.0; 10]]);
        let ip = InstanceProfile::compute(&concat, 4, Metric::MeanSquared);
        // valid starts: 0..=6 and 10..=16 — never 7, 8, 9
        assert_eq!(ip.len(), 14);
        assert!(ip
            .entries()
            .iter()
            .all(|e| concat.within_one_instance(e.start, 4)));
    }

    #[test]
    fn entry_count_matches_definition() {
        // |D_C| instances of length N give |D_C|·(N − L + 1) entries.
        let seqs: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..25).map(|i| ((i + k * 7) as f64 * 0.3).sin()).collect())
            .collect();
        let concat = concat_of(&seqs);
        let ip = InstanceProfile::compute(&concat, 6, Metric::MeanSquared);
        assert_eq!(ip.len(), 4 * (25 - 6 + 1));
    }

    #[test]
    fn short_instances_are_skipped() {
        let concat = concat_of(&[vec![1.0, 2.0], vec![0.0; 12]]);
        let ip = InstanceProfile::compute(&concat, 5, Metric::MeanSquared);
        assert_eq!(ip.len(), 8); // only the second instance contributes
                                 // single-instance sample: every neighbor search has no other long
                                 // instance? No — instance 0 is too short to provide neighbors, so
                                 // the profile is infinite and motif() is None.
        assert!(ip.motif().is_none());
        assert!(ip.discord().is_none());
    }

    #[test]
    fn works_from_dataset_concat() {
        let data = Dataset::new(
            vec![
                TimeSeries::new((0..20).map(|i| (i as f64 * 0.4).sin()).collect()),
                TimeSeries::new((0..20).map(|i| (i as f64 * 0.4).sin() + 0.01).collect()),
            ],
            vec![1, 1],
        )
        .unwrap();
        let cc = data.concat_class(1);
        let ip = InstanceProfile::compute(&cc, 5, Metric::ZNormEuclidean);
        assert_eq!(ip.len(), 2 * 16);
        let motif = ip.motif().unwrap();
        assert!(
            motif.value < 0.5,
            "near-identical instances: {}",
            motif.value
        );
    }

    #[test]
    fn values_are_start_ordered() {
        let concat = concat_of(&[vec![0.5; 10], vec![1.0; 10], vec![0.0; 10]]);
        let ip = InstanceProfile::compute(&concat, 3, Metric::MeanSquared);
        let starts: Vec<usize> = ip.entries().iter().map(|e| e.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
