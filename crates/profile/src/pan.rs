//! Pan matrix profile: the self-join profile across a whole grid of
//! window lengths.
//!
//! The length of the best shapelet is unknown a priori — the paper sweeps
//! length ratios {0.1 … 0.5}·N. The pan profile materializes that sweep
//! for exploration: per (length, offset) the NN distance, and per offset
//! the length at which the window is most motif-like, normalized so
//! lengths are comparable (z-normalized distances are divided by `√(2m)`,
//! their theoretical maximum).

use crate::matrix::{MatrixProfile, Metric};

/// The self-join profiles of one series at several window lengths.
#[derive(Debug, Clone)]
pub struct PanProfile {
    lengths: Vec<usize>,
    /// One profile per length, in `lengths` order.
    profiles: Vec<MatrixProfile>,
    metric: Metric,
}

impl PanProfile {
    /// Computes the pan profile for the given window lengths (deduplicated,
    /// sorted; lengths longer than the series are dropped).
    pub fn compute(series: &[f64], lengths: &[usize], metric: Metric) -> Self {
        let mut ls: Vec<usize> = lengths
            .iter()
            .copied()
            .filter(|&l| l > 0 && l <= series.len())
            .collect();
        ls.sort_unstable();
        ls.dedup();
        let profiles = ls
            .iter()
            .map(|&l| MatrixProfile::self_join(series, l, metric))
            .collect();
        Self {
            lengths: ls,
            profiles,
            metric,
        }
    }

    /// The (deduplicated) window lengths.
    pub fn lengths(&self) -> &[usize] {
        &self.lengths
    }

    /// The profile at one length, if computed.
    pub fn profile(&self, length: usize) -> Option<&MatrixProfile> {
        self.lengths
            .iter()
            .position(|&l| l == length)
            .map(|i| &self.profiles[i])
    }

    /// Number of lengths covered.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// True when every requested length exceeded the series.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Normalizes a profile value so different lengths compare fairly:
    /// z-normalized distances divide by their maximum `√(2m)`; raw
    /// mean-squared distances are already per-point.
    fn normalized(&self, value: f64, length: usize) -> f64 {
        match self.metric {
            Metric::ZNormEuclidean => value / (2.0 * length as f64).sqrt(),
            Metric::MeanSquared => value,
        }
    }

    /// The globally most motif-like `(length, offset, normalized_value)` —
    /// the data-driven pick for "what is the natural pattern length here?".
    pub fn best_motif(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (l, p) in self.lengths.iter().zip(&self.profiles) {
            for (i, &v) in p.values().iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let nv = self.normalized(v, *l);
                if best.is_none_or(|(.., b)| nv < b) {
                    best = Some((*l, i, nv));
                }
            }
        }
        best
    }

    /// Per-offset minimum over lengths (a 1-D summary of the pan surface):
    /// entry `i` is the normalized value of the most motif-like window
    /// starting at `i` at any length, `INFINITY` where no window fits.
    pub fn floor(&self) -> Vec<f64> {
        let n_out = self.profiles.iter().map(|p| p.len()).max().unwrap_or(0);
        let mut out = vec![f64::INFINITY; n_out];
        for (l, p) in self.lengths.iter().zip(&self.profiles) {
            for (i, &v) in p.values().iter().enumerate() {
                if v.is_finite() {
                    let nv = self.normalized(v, *l);
                    if nv < out[i] {
                        out[i] = nv;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_motif(motif_len: usize) -> Vec<f64> {
        let mut s: Vec<f64> = (0..200)
            .map(|i| {
                let x = i as f64;
                (0.5 + 0.3 * (x * 0.019).sin()) * (x * 0.43).sin()
            })
            .collect();
        let pat: Vec<f64> = (0..motif_len)
            .map(|i| 3.0 + (i as f64 * 1.1).sin() * 2.0)
            .collect();
        s[20..20 + motif_len].copy_from_slice(&pat);
        s[140..140 + motif_len].copy_from_slice(&pat);
        s
    }

    #[test]
    fn covers_requested_lengths() {
        let s = series_with_motif(16);
        let pan = PanProfile::compute(&s, &[8, 16, 16, 32, 9999], Metric::ZNormEuclidean);
        assert_eq!(pan.lengths(), &[8, 16, 32]);
        assert_eq!(pan.len(), 3);
        assert!(pan.profile(16).is_some());
        assert!(pan.profile(10).is_none());
    }

    #[test]
    fn best_motif_is_at_a_planted_occurrence() {
        let s = series_with_motif(16);
        let pan = PanProfile::compute(&s, &[8, 16, 24], Metric::ZNormEuclidean);
        let (_, offset, v) = pan.best_motif().expect("motif exists");
        assert!(v < 0.05, "normalized motif value {v}");
        assert!(
            offset.abs_diff(20) <= 8 || offset.abs_diff(140) <= 8,
            "motif at {offset}"
        );
    }

    #[test]
    fn floor_is_pointwise_minimum() {
        let s = series_with_motif(12);
        let pan = PanProfile::compute(&s, &[8, 12], Metric::ZNormEuclidean);
        let floor = pan.floor();
        let p8 = pan.profile(8).unwrap();
        for (i, &f) in floor.iter().enumerate() {
            if i < p8.len() && p8.values()[i].is_finite() {
                assert!(f <= p8.values()[i] / (16.0f64).sqrt() + 1e-12);
            }
        }
    }

    #[test]
    fn empty_when_all_lengths_too_long() {
        let pan = PanProfile::compute(&[1.0, 2.0], &[10, 20], Metric::MeanSquared);
        assert!(pan.is_empty());
        assert!(pan.best_motif().is_none());
        assert!(pan.floor().is_empty());
    }
}
