//! Matrix profile self-joins and AB-joins.

use ips_distance::rolling::RollingStats;
use ips_distance::{argmax, argmin, znorm_dist_from_dot};

/// Re-exported from `ips-distance`, which owns the metric so the batch
/// kernel and distance cache can key on it without a dependency cycle.
pub use ips_distance::Metric;

/// A computed matrix profile: per-window nearest-neighbor distance and the
/// position of that neighbor.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    values: Vec<f64>,
    nn_index: Vec<usize>,
    window: usize,
    metric: Metric,
}

impl MatrixProfile {
    /// Self-join with the default exclusion zone of `window / 2` (the
    /// trivial-match exclusion of the footnote under Definition 5).
    pub fn self_join(series: &[f64], window: usize, metric: Metric) -> Self {
        Self::self_join_excl(series, window, metric, window / 2)
    }

    /// Self-join with an explicit exclusion half-width: windows `j` with
    /// `|i − j| <= excl` are not eligible neighbors of window `i`.
    ///
    /// Uses the O(n²) incremental kernel (see [`Self::self_join_brute`] for
    /// the O(n²·m) reference both are tested against).
    pub fn self_join_excl(series: &[f64], window: usize, metric: Metric, excl: usize) -> Self {
        let n_out = num_windows(series.len(), window);
        let mut values = vec![f64::INFINITY; n_out];
        let mut nn_index = vec![0usize; n_out];
        if n_out == 0 {
            return Self {
                values,
                nn_index,
                window,
                metric,
            };
        }
        match metric {
            Metric::MeanSquared => {
                // Diagonal recurrence on raw squared distances:
                // sq(i+1, j+1) = sq(i, j) − (s_i − s_j)² + (s_{i+m} − s_{j+m})².
                // Walking diagonals k = j − i > excl covers all pairs once.
                let m = window;
                for k in (excl + 1)..n_out {
                    let mut sq = sq_dist(&series[0..m], &series[k..k + m]);
                    update_pair(&mut values, &mut nn_index, 0, k, sq / m as f64);
                    for i in 1..(n_out - k) {
                        let j = i + k;
                        let drop = series[i - 1] - series[j - 1];
                        let add = series[i + m - 1] - series[j + m - 1];
                        sq += add * add - drop * drop;
                        let sq_c = sq.max(0.0); // guard drift below zero
                        update_pair(&mut values, &mut nn_index, i, j, sq_c / m as f64);
                    }
                }
            }
            Metric::ZNormEuclidean => {
                let m = window;
                let stats = RollingStats::new(series, m);
                // Diagonal recurrence on dot products:
                // qt(i+1, j+1) = qt(i, j) − s_i·s_j + s_{i+m}·s_{j+m}.
                for k in (excl + 1)..n_out {
                    let mut qt: f64 = series[0..m]
                        .iter()
                        .zip(&series[k..k + m])
                        .map(|(a, b)| a * b)
                        .sum();
                    let d = znorm_dist_from_dot(
                        qt,
                        m,
                        stats.mean(0),
                        stats.std(0),
                        stats.mean(k),
                        stats.std(k),
                    );
                    update_pair(&mut values, &mut nn_index, 0, k, d);
                    for i in 1..(n_out - k) {
                        let j = i + k;
                        qt += series[i + m - 1] * series[j + m - 1] - series[i - 1] * series[j - 1];
                        let d = znorm_dist_from_dot(
                            qt,
                            m,
                            stats.mean(i),
                            stats.std(i),
                            stats.mean(j),
                            stats.std(j),
                        );
                        update_pair(&mut values, &mut nn_index, i, j, d);
                    }
                }
            }
        }
        Self {
            values,
            nn_index,
            window,
            metric,
        }
    }

    /// Brute-force self-join: O(n²·m). Reference implementation used by the
    /// tests and the `profile` bench.
    pub fn self_join_brute(series: &[f64], window: usize, metric: Metric, excl: usize) -> Self {
        let n_out = num_windows(series.len(), window);
        let mut values = vec![f64::INFINITY; n_out];
        let mut nn_index = vec![0usize; n_out];
        for i in 0..n_out {
            for j in 0..n_out {
                if i.abs_diff(j) <= excl {
                    continue;
                }
                let d = window_dist(series, i, j, window, metric);
                if d < values[i] {
                    values[i] = d;
                    nn_index[i] = j;
                }
            }
        }
        Self {
            values,
            nn_index,
            window,
            metric,
        }
    }

    /// AB-join: for every window of `a`, the distance to its nearest
    /// neighbor among the windows of `b` (no exclusion zone — the series
    /// are different). This is the `P_AB` of Figures 3–4.
    pub fn ab_join(a: &[f64], b: &[f64], window: usize, metric: Metric) -> Self {
        let n_a = num_windows(a.len(), window);
        let n_b = num_windows(b.len(), window);
        let mut values = vec![f64::INFINITY; n_a];
        let mut nn_index = vec![0usize; n_a];
        if n_a == 0 || n_b == 0 {
            return Self {
                values,
                nn_index,
                window,
                metric,
            };
        }
        match metric {
            Metric::MeanSquared => {
                let m = window;
                // Diagonal recurrence across the rectangle [0,n_a) × [0,n_b).
                // Diagonals start on the top row (i=0) or left column (j=0).
                let mut starts: Vec<(usize, usize)> = (0..n_b).map(|j| (0, j)).collect();
                starts.extend((1..n_a).map(|i| (i, 0)));
                for (i0, j0) in starts {
                    let mut sq = sq_dist(&a[i0..i0 + m], &b[j0..j0 + m]);
                    update_one(&mut values, &mut nn_index, i0, j0, sq / m as f64);
                    let steps = (n_a - i0).min(n_b - j0);
                    for t in 1..steps {
                        let (i, j) = (i0 + t, j0 + t);
                        let drop = a[i - 1] - b[j - 1];
                        let add = a[i + m - 1] - b[j + m - 1];
                        sq += add * add - drop * drop;
                        update_one(&mut values, &mut nn_index, i, j, sq.max(0.0) / m as f64);
                    }
                }
            }
            Metric::ZNormEuclidean => {
                let m = window;
                let stats_a = RollingStats::new(a, m);
                let stats_b = RollingStats::new(b, m);
                let mut starts: Vec<(usize, usize)> = (0..n_b).map(|j| (0, j)).collect();
                starts.extend((1..n_a).map(|i| (i, 0)));
                for (i0, j0) in starts {
                    let mut qt: f64 = a[i0..i0 + m]
                        .iter()
                        .zip(&b[j0..j0 + m])
                        .map(|(x, y)| x * y)
                        .sum();
                    let d = znorm_dist_from_dot(
                        qt,
                        m,
                        stats_a.mean(i0),
                        stats_a.std(i0),
                        stats_b.mean(j0),
                        stats_b.std(j0),
                    );
                    update_one(&mut values, &mut nn_index, i0, j0, d);
                    let steps = (n_a - i0).min(n_b - j0);
                    for t in 1..steps {
                        let (i, j) = (i0 + t, j0 + t);
                        qt += a[i + m - 1] * b[j + m - 1] - a[i - 1] * b[j - 1];
                        let d = znorm_dist_from_dot(
                            qt,
                            m,
                            stats_a.mean(i),
                            stats_a.std(i),
                            stats_b.mean(j),
                            stats_b.std(j),
                        );
                        update_one(&mut values, &mut nn_index, i, j, d);
                    }
                }
            }
        }
        Self {
            values,
            nn_index,
            window,
            metric,
        }
    }

    /// Profile values (`mp_i` of Definition 5).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Nearest-neighbor position per window.
    #[inline]
    pub fn nn_index(&self) -> &[usize] {
        &self.nn_index
    }

    /// Window length.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Metric used.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of profile entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series was shorter than the window.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `(position, value)` of the motif (global minimum).
    ///
    /// # Panics
    /// Panics when the profile is empty.
    pub fn motif(&self) -> (usize, f64) {
        let (i, v) = argmin(&self.values).expect("non-empty profile");
        (i, v)
    }

    /// `(position, value)` of the discord (global maximum among finite
    /// entries).
    ///
    /// # Panics
    /// Panics when the profile is empty or all-infinite.
    pub fn discord(&self) -> (usize, f64) {
        let (i, v) = self
            .values
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("profile has finite entries");
        (i, v)
    }

    /// Element-wise difference `self − other` over the common prefix — the
    /// `diff(P_AB, P_AA)` of Figure 4. The profiles must share the window
    /// length.
    pub fn diff(&self, other: &MatrixProfile) -> Vec<f64> {
        assert_eq!(
            self.window, other.window,
            "profiles must share the window length"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a - b)
            .collect()
    }

    /// `(position, value)` of the largest difference `self − other`
    /// (Formula 4's arg max). `None` when the common prefix is empty.
    pub fn max_diff(&self, other: &MatrixProfile) -> Option<(usize, f64)> {
        let d = self.diff(other);
        argmax(&d)
    }
}

#[inline]
fn num_windows(n: usize, window: usize) -> usize {
    if window == 0 || n < window {
        0
    } else {
        n - window + 1
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Symmetric self-join update: distance of pair `(i, j)` improves both rows.
#[inline]
fn update_pair(values: &mut [f64], nn: &mut [usize], i: usize, j: usize, d: f64) {
    if d < values[i] {
        values[i] = d;
        nn[i] = j;
    }
    if d < values[j] {
        values[j] = d;
        nn[j] = i;
    }
}

#[inline]
fn update_one(values: &mut [f64], nn: &mut [usize], i: usize, j: usize, d: f64) {
    if d < values[i] {
        values[i] = d;
        nn[i] = j;
    }
}

fn window_dist(series: &[f64], i: usize, j: usize, m: usize, metric: Metric) -> f64 {
    let (a, b) = (&series[i..i + m], &series[j..j + m]);
    match metric {
        Metric::MeanSquared => sq_dist(a, b) / m as f64,
        Metric::ZNormEuclidean => {
            let d = ips_distance::dist_profile_znorm(a, b);
            d[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.35).sin() * 2.0 + (i as f64 * 0.05).cos())
            .collect()
    }

    #[test]
    fn incremental_matches_brute_meansq() {
        let s = wave(120);
        for m in [4, 9, 16] {
            let fast = MatrixProfile::self_join_excl(&s, m, Metric::MeanSquared, m / 2);
            let slow = MatrixProfile::self_join_brute(&s, m, Metric::MeanSquared, m / 2);
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert!(
                    (fast.values()[i] - slow.values()[i]).abs() < 1e-8,
                    "m={m} i={i}: {} vs {}",
                    fast.values()[i],
                    slow.values()[i]
                );
            }
        }
    }

    #[test]
    fn incremental_matches_brute_znorm() {
        let s = wave(100);
        for m in [5, 12] {
            let fast = MatrixProfile::self_join_excl(&s, m, Metric::ZNormEuclidean, m / 2);
            let slow = MatrixProfile::self_join_brute(&s, m, Metric::ZNormEuclidean, m / 2);
            for i in 0..fast.len() {
                assert!(
                    (fast.values()[i] - slow.values()[i]).abs() < 1e-6,
                    "m={m} i={i}: {} vs {}",
                    fast.values()[i],
                    slow.values()[i]
                );
            }
        }
    }

    #[test]
    fn planted_motif_pair_is_found() {
        // Two identical rare patterns far apart in an aperiodic background
        // (amplitude modulation prevents exact window repeats).
        let mut s: Vec<f64> = (0..150)
            .map(|i| {
                let x = i as f64;
                (0.5 + 0.3 * (x * 0.0173).sin()) * (x * 0.41).sin() + 0.001 * x
            })
            .collect();
        let pat = [5.0, 6.0, 5.5, 6.5, 5.0, 4.0, 6.0, 5.0];
        s[20..28].copy_from_slice(&pat);
        s[100..108].copy_from_slice(&pat);
        let mp = MatrixProfile::self_join(&s, 8, Metric::MeanSquared);
        let (pos, val) = mp.motif();
        assert!(val < 1e-12);
        assert!(pos == 20 || pos == 100);
        assert!(mp.nn_index()[20] == 100 || mp.nn_index()[100] == 20);
    }

    #[test]
    fn planted_discord_is_found() {
        let mut s = wave(200);
        for (k, v) in s[90..97].iter_mut().enumerate() {
            *v += if k % 2 == 0 { 8.0 } else { -8.0 };
        }
        let mp = MatrixProfile::self_join(&s, 8, Metric::ZNormEuclidean);
        let (pos, _) = mp.discord();
        assert!((82..=97).contains(&pos), "discord at {pos}");
    }

    #[test]
    fn exclusion_zone_blocks_trivial_matches() {
        let s = wave(80);
        // With no exclusion the nearest neighbor is the adjacent window.
        let naive = MatrixProfile::self_join_excl(&s, 8, Metric::MeanSquared, 0);
        let proper = MatrixProfile::self_join_excl(&s, 8, Metric::MeanSquared, 4);
        // trivial matches make the zero-exclusion profile no larger anywhere
        for i in 0..naive.len() {
            assert!(naive.values()[i] <= proper.values()[i] + 1e-12);
        }
        // and at least somewhere strictly smaller on a smooth wave
        assert!(naive.values().iter().sum::<f64>() < proper.values().iter().sum::<f64>());
        for (i, &j) in proper.nn_index().iter().enumerate() {
            if proper.values()[i].is_finite() {
                assert!(i.abs_diff(j) > 4, "nn of {i} is {j}");
            }
        }
    }

    #[test]
    fn ab_join_matches_naive_profiles() {
        let a = wave(70);
        let b: Vec<f64> = (0..90).map(|i| (i as f64 * 0.21).cos() * 1.5).collect();
        for metric in [Metric::MeanSquared, Metric::ZNormEuclidean] {
            let mp = MatrixProfile::ab_join(&a, &b, 9, metric);
            assert_eq!(mp.len(), 70 - 9 + 1);
            for i in 0..mp.len() {
                let q = &a[i..i + 9];
                let naive = match metric {
                    Metric::MeanSquared => ips_distance::dist_profile(q, &b)
                        .into_iter()
                        .fold(f64::INFINITY, f64::min),
                    Metric::ZNormEuclidean => ips_distance::dist_profile_znorm(q, &b)
                        .into_iter()
                        .fold(f64::INFINITY, f64::min),
                };
                assert!(
                    (mp.values()[i] - naive).abs() < 1e-6,
                    "{metric:?} i={i}: {} vs {naive}",
                    mp.values()[i]
                );
            }
        }
    }

    #[test]
    fn ab_join_finds_shared_pattern() {
        let mut a = vec![0.1; 60];
        let mut b = vec![-0.1; 60];
        let pat = [3.0, 4.0, 3.5, 4.5, 3.0];
        a[10..15].copy_from_slice(&pat);
        b[40..45].copy_from_slice(&pat);
        let mp = MatrixProfile::ab_join(&a, &b, 5, Metric::MeanSquared);
        assert!(mp.values()[10] < 1e-12);
        assert_eq!(mp.nn_index()[10], 40);
    }

    #[test]
    fn diff_and_max_diff() {
        let a = wave(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.9).cos()).collect();
        let pab = MatrixProfile::ab_join(&a, &b, 6, Metric::MeanSquared);
        let paa = MatrixProfile::self_join(&a, 6, Metric::MeanSquared);
        let d = pab.diff(&paa);
        assert_eq!(d.len(), pab.len().min(paa.len()));
        let (pos, val) = pab.max_diff(&paa).unwrap();
        assert!((d[pos] - val).abs() < 1e-12);
        assert!(d.iter().all(|&x| x <= val + 1e-12));
    }

    #[test]
    fn degenerate_inputs_yield_empty_profiles() {
        let mp = MatrixProfile::self_join(&[1.0, 2.0], 5, Metric::MeanSquared);
        assert!(mp.is_empty());
        let mp = MatrixProfile::ab_join(&[1.0, 2.0], &[1.0], 2, Metric::MeanSquared);
        assert_eq!(mp.len(), 1);
        assert_eq!(mp.values()[0], f64::INFINITY);
    }

    #[test]
    fn all_excluded_profile_is_infinite() {
        let s = wave(20);
        let mp = MatrixProfile::self_join_excl(&s, 8, Metric::MeanSquared, 100);
        assert!(mp.values().iter().all(|v| v.is_infinite()));
    }
}
