//! Matrix profile and instance profile computation.
//!
//! The matrix profile (Definition 5 of the paper; Yeh et al., "Matrix
//! Profile I") annotates every window of a series with its nearest-neighbor
//! distance. This crate provides:
//!
//! * **self-joins** with a trivial-match exclusion zone, in both the
//!   paper's raw mean-squared metric (Definition 4) and the conventional
//!   z-normalized Euclidean metric, each with a brute-force reference and
//!   an O(n²) incremental (STOMP-style) implementation;
//! * **AB-joins** between two series (the `P_AB` of Figures 3–4);
//! * the paper's **instance profile** (Definitions 8–9): the profile of a
//!   *sampled concatenation* of class instances where subsequences may not
//!   straddle instance boundaries and same-instance matches are excluded;
//! * **motif/discord extraction** with exclusion zones;
//! * a **streaming profile** (STAMPI-style point appends) and a **pan
//!   profile** across a grid of window lengths.
//!
//! ```
//! use ips_profile::{MatrixProfile, Metric};
//!
//! let mut s: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();
//! s.extend_from_slice(&[9.0, -9.0, 9.0]); // an obvious anomaly
//! s.extend((0..61).map(|i| (i as f64 * 0.4).sin()));
//! let mp = MatrixProfile::self_join(&s, 8, Metric::ZNormEuclidean);
//! let (discord_at, _) = mp.discord();
//! assert!((58..=68).contains(&discord_at));
//! ```

pub mod instance;
pub mod matrix;
pub mod motif;
pub mod pan;
pub mod streaming;

pub use instance::{InstanceProfile, ProfileEntry};
pub use matrix::{MatrixProfile, Metric};
pub use motif::{top_discords, top_motifs, Occurrence};
pub use pan::PanProfile;
pub use streaming::StreamingProfile;
